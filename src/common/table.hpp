// Column-aligned text tables for benchmark output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace unr {

class TextTable {
 public:
  /// Set the header row; column count is fixed by it.
  void header(std::vector<std::string> cells);
  /// Append a data row (padded/truncated to the header width).
  void row(std::vector<std::string> cells);
  /// Insert a horizontal separator at the current position.
  void separator();
  void print(std::ostream& os) const;

  /// Formatting helpers.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);  ///< 0.36 -> "36.0%"

 private:
  std::vector<std::string> header_;
  // A row with the single magic cell "\x01sep" renders as a separator.
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& t);

}  // namespace unr
