#include "common/log.hpp"

#include <cstdio>

namespace unr {
namespace {

LogLevel g_level = LogLevel::kWarn;
WarnHandler g_warn_handler;

const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  std::fprintf(stderr, "[unr %s] %s\n", level_tag(level), msg.c_str());
}

void set_warn_handler(WarnHandler handler) { g_warn_handler = std::move(handler); }

void log_warn(const std::string& msg) {
  if (g_warn_handler) g_warn_handler(msg);
  log_message(LogLevel::kWarn, msg);
}

}  // namespace unr
