// Deterministic random number generation for the simulator.
//
// xoshiro256** — fast, high-quality, and (unlike std::mt19937 +
// std::*_distribution) produces identical streams on every platform and
// standard library, which keeps simulation runs bit-reproducible.
#pragma once

#include <cstdint>

namespace unr {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) { return next() % n; }

  /// Standard normal via Box-Muller (deterministic, no cached spare so the
  /// stream position is a pure function of call count).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with given mean.
  double exponential(double mean);

  /// Fork a statistically independent stream (e.g. one per NIC).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace unr
