// Small statistics helpers for benchmarks and internal accounting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace unr {

/// Streaming mean/variance/min/max (Welford).
class OnlineStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  void reset() { *this = OnlineStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores all samples; supports exact percentiles. Intended for benchmark
/// sample counts (thousands), not production telemetry.
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  std::size_t count() const { return xs_.size(); }
  double mean() const;
  double percentile(double p) const;  ///< p in [0, 100]
  double median() const { return percentile(50.0); }
  double min() const { return percentile(0.0); }
  double max() const { return percentile(100.0); }
  void clear() { xs_.clear(); }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-boundary histogram (log2 buckets) for event-size/latency summaries.
class Log2Histogram {
 public:
  void add(std::uint64_t v);
  std::size_t bucket_count() const { return buckets_.size(); }
  std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }
  std::uint64_t total() const { return total_; }
  /// Lower bound of bucket i (1 << i, bucket 0 holds values 0 and 1).
  static std::uint64_t bucket_floor(std::size_t i) { return i == 0 ? 0 : (1ull << i); }

 private:
  std::vector<std::uint64_t> buckets_ = std::vector<std::uint64_t>(64, 0);
  std::uint64_t total_ = 0;
};

}  // namespace unr
