// Assertion helpers used across the library.
//
// UNR_CHECK is always on (release included): the simulator's invariants are
// cheap relative to event dispatch, and silent corruption of virtual time or
// counters would invalidate every measurement downstream.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace unr {

[[noreturn]] inline void check_fail(const char* expr, const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << "UNR_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace unr

#define UNR_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::unr::check_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define UNR_CHECK_MSG(expr, msg)                                  \
  do {                                                            \
    if (!(expr)) {                                                \
      std::ostringstream os_;                                     \
      os_ << msg;                                                 \
      ::unr::check_fail(#expr, __FILE__, __LINE__, os_.str());    \
    }                                                             \
  } while (0)

// UNR_DCHECK: debug-only checks for per-element hot loops (field accessors
// run ~100x per grid cell per step — always-on checks there dominate the
// simulator's wall time, unlike the per-event invariants above). Enabled in
// debug builds and whenever UNR_ENABLE_DCHECKS is defined (the sanitizer CI
// configuration turns them on explicitly so Release+ASan still validates
// indices).
#if !defined(NDEBUG) || defined(UNR_ENABLE_DCHECKS)
#define UNR_DCHECK(expr) UNR_CHECK(expr)
#else
#define UNR_DCHECK(expr) \
  do {                   \
  } while (0)
#endif
