// Time and size units. Virtual time is integer nanoseconds throughout.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace unr {

/// Virtual time in nanoseconds. The simulation clock is integral so that
/// event ordering is exact and runs are bit-reproducible.
using Time = std::uint64_t;

inline constexpr Time kNs = 1;
inline constexpr Time kUs = 1000;
inline constexpr Time kMs = 1000 * kUs;
inline constexpr Time kSec = 1000 * kMs;

inline constexpr std::size_t KiB = 1024;
inline constexpr std::size_t MiB = 1024 * KiB;
inline constexpr std::size_t GiB = 1024 * MiB;

/// Bytes per nanosecond for a link of `gbps` gigabits per second.
/// (1 Gbps = 0.125 bytes/ns.)
inline constexpr double gbps_to_bytes_per_ns(double gbps) { return gbps * 0.125; }

/// Time to serialize `bytes` onto a link of `gbps`.
inline Time serialize_ns(std::size_t bytes, double gbps) {
  return static_cast<Time>(static_cast<double>(bytes) / gbps_to_bytes_per_ns(gbps));
}

inline std::string format_bytes(std::size_t n) {
  char buf[64];
  if (n >= MiB && n % MiB == 0)
    std::snprintf(buf, sizeof buf, "%zuMiB", n / MiB);
  else if (n >= KiB && n % KiB == 0)
    std::snprintf(buf, sizeof buf, "%zuKiB", n / KiB);
  else
    std::snprintf(buf, sizeof buf, "%zuB", n);
  return buf;
}

inline std::string format_time(Time ns) {
  char buf[64];
  if (ns >= kSec)
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(ns) / kSec);
  else if (ns >= kMs)
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(ns) / kMs);
  else if (ns >= kUs)
    std::snprintf(buf, sizeof buf, "%.2fus", static_cast<double>(ns) / kUs);
  else
    std::snprintf(buf, sizeof buf, "%luns", static_cast<unsigned long>(ns));
  return buf;
}

}  // namespace unr
