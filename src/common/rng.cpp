#include "common/rng.hpp"

#include <cmath>

namespace unr {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: seeds the xoshiro state from a single 64-bit value.
inline std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::normal() {
  // Box-Muller; reject u1 == 0 to avoid log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double Rng::exponential(double mean) {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

Rng Rng::fork() {
  Rng child(0);
  for (auto& s : child.s_) s = next();
  return child;
}

}  // namespace unr
