// System profiles: the four evaluation platforms of the paper (Table III)
// expressed as simulator cost models, plus the low-level interface family
// each one exposes (Table II).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace unr {

/// Low-level network programming interface families surveyed in Table II.
enum class Interface {
  kGlex,     ///< TH Express (Tianhe): 128-bit custom bits everywhere -> level 3
  kVerbs,    ///< InfiniBand / RoCE / Slingshot: 32-bit remote immediate -> level 2
  kUtofu,    ///< Fugaku Tofu: 8-bit remote -> level 1
  kUgni,     ///< Cray Aries: 32-bit -> level 2
  kPami,     ///< Blue Gene/Q: 64-bit shared -> level 2
  kPortals,  ///< SeaStar: 64-bit remote, hash at local -> level 3
};

const char* interface_name(Interface i);

/// Cost model for one evaluation platform. Every quantity that the paper's
/// results depend on (NIC count, bandwidth, latency, software overheads,
/// core counts) is explicit here; DESIGN.md documents how each knob maps to
/// the real system it stands in for.
struct SystemProfile {
  std::string name;
  std::string description;

  // --- Topology / hardware ---
  int nics_per_node = 1;
  double nic_gbps = 100.0;      ///< per-NIC link bandwidth
  Time wire_latency = 1100;     ///< one-way wire+switch latency (ns)
  Time nic_overhead = 250;      ///< per-message NIC processing before the wire (ns)
  Time jitter = 0;              ///< adaptive-routing jitter amplitude (ns, uniform)
  int cores_per_node = 18;
  Interface iface = Interface::kVerbs;

  // --- Software cost model ---
  double memcpy_gbps = 96.0;    ///< host memory copy bandwidth (eager/fallback copies)
  Time sw_overhead = 400;       ///< per-message software stack cost, two-sided path (ns)
  Time rma_post_overhead = 120; ///< per-operation cost to post an RMA descriptor (ns)
  /// Extra per-operation software cost of UNR's MPI-fallback channel on this
  /// platform (emulating notified RMA over the vendor MPI: progress-thread
  /// wakeups, request bookkeeping). Calibrated against Fig. 6 — see
  /// EXPERIMENTS.md; 0 on platforms with a lean MPI emulation path.
  Time fallback_extra_sw = 0;
  std::size_t eager_threshold = 8 * KiB;
  std::size_t max_frag = 1 * MiB;  ///< NIC fragments larger transfers internally

  // --- Completion-queue behaviour ---
  std::size_t cq_depth = 4096;  ///< remote completion queue entries per NIC
  Time cq_retry_delay = 2000;   ///< NACK/retry delay when a remote CQ is full (ns)

  // --- Application compute cost (mini-PowerLLEL) ---
  double compute_ns_per_cell = 2.0;  ///< per grid cell per kernel at one core

  /// Time to copy `bytes` through host memory.
  Time memcpy_time(std::size_t bytes) const { return serialize_ns(bytes, memcpy_gbps); }
};

/// The four platforms of Table III.
SystemProfile make_th_xy();
SystemProfile make_th_2a();
SystemProfile make_hpc_ib();
SystemProfile make_hpc_roce();

/// All four, in the paper's order.
std::vector<SystemProfile> all_system_profiles();

/// Look up by name ("TH-XY", "TH-2A", "HPC-IB", "HPC-RoCE"); throws if unknown.
SystemProfile system_profile(const std::string& name);

}  // namespace unr
