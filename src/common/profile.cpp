#include "common/profile.hpp"

#include <stdexcept>

namespace unr {

const char* interface_name(Interface i) {
  switch (i) {
    case Interface::kGlex: return "Glex";
    case Interface::kVerbs: return "Verbs";
    case Interface::kUtofu: return "uTofu";
    case Interface::kUgni: return "uGNI";
    case Interface::kPami: return "PAMI";
    case Interface::kPortals: return "Portals";
  }
  return "?";
}

SystemProfile make_th_xy() {
  SystemProfile p;
  p.name = "TH-XY";
  p.description = "Tianhe-Xingyi (2024): 2x 200Gbps new TH Express NICs, GLEX";
  p.nics_per_node = 2;
  p.nic_gbps = 200.0;
  p.wire_latency = 900;
  p.nic_overhead = 150;
  p.jitter = 60;
  p.cores_per_node = 32;
  p.iface = Interface::kGlex;
  p.memcpy_gbps = 320.0;  // modern DDR: staging copies are cheap here
  p.sw_overhead = 220;
  p.rma_post_overhead = 90;
  p.eager_threshold = 8 * KiB;
  p.compute_ns_per_cell = 2.8;
  return p;
}

SystemProfile make_th_2a() {
  SystemProfile p;
  p.name = "TH-2A";
  p.description = "Tianhe-2A (2013): 114Gbps TH Express NIC, GLEX";
  p.nics_per_node = 1;
  p.nic_gbps = 114.0;
  p.wire_latency = 1500;
  p.nic_overhead = 420;
  p.jitter = 90;
  p.cores_per_node = 24;
  p.iface = Interface::kGlex;
  // 2013-era hosts: slow memory copies and a heavy software stack. These two
  // knobs are what make the UNR fallback channel (extra staging copy + notify
  // message per operation) lose badly here, as in Fig. 6 (-61% on TH-2A).
  p.memcpy_gbps = 48.0;
  p.sw_overhead = 950;
  p.rma_post_overhead = 200;
  // The 2013-era vendor MPI buffers eagerly up to large sizes (extra copies
  // in the baseline) and its emulation path for notified RMA is expensive —
  // the two ingredients of Fig. 6's TH-2A fallback collapse.
  p.eager_threshold = 16 * KiB;
  p.fallback_extra_sw = 20 * kUs;
  p.compute_ns_per_cell = 3.4;
  return p;
}

SystemProfile make_hpc_ib() {
  SystemProfile p;
  p.name = "HPC-IB";
  p.description = "InfiniBand cluster (2019): 100Gbps EDR ConnectX-5, Verbs";
  p.nics_per_node = 1;
  p.nic_gbps = 100.0;
  p.wire_latency = 1100;
  p.nic_overhead = 240;
  p.jitter = 70;
  // The paper runs PowerLLEL with one OpenMP thread per core on an 18-core
  // socket; the 16-vs-18-thread polling experiment is expressed against this.
  p.cores_per_node = 18;
  p.iface = Interface::kVerbs;
  p.memcpy_gbps = 96.0;
  p.sw_overhead = 420;
  p.rma_post_overhead = 130;
  p.eager_threshold = 8 * KiB;
  p.fallback_extra_sw = 1500;
  p.compute_ns_per_cell = 2.2;
  return p;
}

SystemProfile make_hpc_roce() {
  SystemProfile p;
  p.name = "HPC-RoCE";
  p.description = "RoCE cluster (2019): 25Gbps ConnectX-4 Lx, Verbs";
  p.nics_per_node = 1;
  p.nic_gbps = 25.0;
  p.wire_latency = 2300;
  p.nic_overhead = 320;
  p.jitter = 220;
  p.cores_per_node = 18;
  p.iface = Interface::kVerbs;
  p.memcpy_gbps = 96.0;
  p.sw_overhead = 480;
  p.rma_post_overhead = 140;
  p.eager_threshold = 8 * KiB;
  p.fallback_extra_sw = 1000;
  p.compute_ns_per_cell = 2.2;
  return p;
}

std::vector<SystemProfile> all_system_profiles() {
  return {make_th_xy(), make_th_2a(), make_hpc_ib(), make_hpc_roce()};
}

SystemProfile system_profile(const std::string& name) {
  for (auto& p : all_system_profiles())
    if (p.name == name) return p;
  throw std::invalid_argument("unknown system profile: " + name);
}

}  // namespace unr
