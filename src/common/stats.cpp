#include "common/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.hpp"

namespace unr {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Samples::percentile(double p) const {
  UNR_CHECK(p >= 0.0 && p <= 100.0);
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  // Nearest-rank with linear interpolation between adjacent samples.
  const double rank = p / 100.0 * static_cast<double>(xs_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

void Log2Histogram::add(std::uint64_t v) {
  const std::size_t b = v <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(v) - 1);
  buckets_[b]++;
  total_++;
}

}  // namespace unr
