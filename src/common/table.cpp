#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace unr {

namespace {
const std::string kSepMagic = "\x01sep";
}

void TextTable::header(std::vector<std::string> cells) { header_ = std::move(cells); }

void TextTable::row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::separator() { rows_.push_back({kSepMagic}); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> w(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
  for (const auto& r : rows_) {
    if (!r.empty() && r[0] == kSepMagic) continue;
    for (std::size_t c = 0; c < r.size() && c < w.size(); ++c)
      w[c] = std::max(w[c], r[c].size());
  }
  auto print_sep = [&] {
    for (std::size_t c = 0; c < w.size(); ++c) {
      os << '+' << std::string(w[c] + 2, '-');
    }
    os << "+\n";
  };
  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < w.size(); ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string{};
      os << "| " << cell << std::string(w[c] - cell.size() + 1, ' ');
    }
    os << "|\n";
  };
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& r : rows_) {
    if (!r.empty() && r[0] == kSepMagic)
      print_sep();
    else
      print_row(r);
  }
  print_sep();
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f%%", precision, fraction * 100.0);
  return buf;
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  t.print(os);
  return os;
}

}  // namespace unr
