// Minimal open-addressing hash table keyed by a packed 64-bit integer.
//
// The simulator's per-pair state (ordered-traffic FIFO tails keyed by
// (src_rank, dst_rank)) sits on the per-message hot path; std::map's
// node-per-entry rb-tree costs an allocation per new pair and a pointer
// chase per lookup. This table stores entries in one contiguous power-of-two
// array with linear probing — the common lookup touches a single cache line.
//
// Restrictions (deliberate, for the simulator's use):
//   * key 0xFFFF...FF is reserved as the empty sentinel (rank pairs packed
//     as (src << 32) | dst never collide with it),
//   * no erase (per-pair state lives for the fabric's lifetime),
//   * values must be default-constructible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace unr {

/// splitmix64 finalizer: cheap, high-quality mixing for packed integer keys.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Pack two non-negative 32-bit ids (ranks) into one table key.
inline std::uint64_t pack_pair(int a, int b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(b));
}

template <class V>
class FlatU64Map {
 public:
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  FlatU64Map() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Value for `key`, inserting a default-constructed one on first use.
  V& get_or_insert(std::uint64_t key) {
    UNR_CHECK(key != kEmptyKey);
    if (slots_.empty() || (size_ + 1) * 8 > slots_.size() * 7) grow();
    Entry& e = probe(key);
    if (e.key == kEmptyKey) {
      e.key = key;
      ++size_;
    }
    return e.value;
  }

  /// Pointer to the value for `key`, or nullptr when absent.
  V* find(std::uint64_t key) {
    if (slots_.empty()) return nullptr;
    Entry& e = probe(key);
    return e.key == key ? &e.value : nullptr;
  }
  const V* find(std::uint64_t key) const {
    return const_cast<FlatU64Map*>(this)->find(key);
  }

 private:
  struct Entry {
    std::uint64_t key = kEmptyKey;
    V value{};
  };

  Entry& probe(std::uint64_t key) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(mix64(key)) & mask;
    while (slots_[i].key != key && slots_[i].key != kEmptyKey) i = (i + 1) & mask;
    return slots_[i];
  }

  void grow() {
    std::vector<Entry> old = std::move(slots_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, Entry{});
    for (Entry& e : old) {
      if (e.key == kEmptyKey) continue;
      const std::size_t mask = slots_.size() - 1;
      std::size_t i = static_cast<std::size_t>(mix64(e.key)) & mask;
      while (slots_[i].key != kEmptyKey) i = (i + 1) & mask;
      slots_[i] = std::move(e);
    }
  }

  std::vector<Entry> slots_;
  std::size_t size_ = 0;
};

}  // namespace unr
