#include "check/shrink.hpp"

#include <utility>

#include "check/runner.hpp"

namespace unr::check {
namespace {

struct Shrinker {
  const FailPred& pred;
  const ShrinkOptions& opt;
  ShrinkStats& st;
  WorkloadSpec best;

  bool budget() const { return st.attempts < opt.max_attempts; }

  /// Run one candidate; adopt it when it still fails.
  bool accept(WorkloadSpec cand) {
    if (!budget()) return false;
    if (!validate(cand).empty()) return false;
    ++st.attempts;
    if (!pred(cand)) return false;
    ++st.successes;
    best = std::move(cand);
    return true;
  }

  /// End -> start so surviving indices stay valid across removals.
  bool drop_rounds() {
    bool progress = false;
    for (std::size_t ri = best.rounds.size(); ri-- > 0 && budget();) {
      WorkloadSpec cand = best;
      cand.rounds.erase(cand.rounds.begin() + static_cast<std::ptrdiff_t>(ri));
      progress |= accept(std::move(cand));
    }
    return progress;
  }

  bool drop_ops() {
    bool progress = false;
    for (std::size_t ri = best.rounds.size(); ri-- > 0 && budget();) {
      if (best.rounds[ri].kind != RoundSpec::Kind::kXfer) continue;
      for (std::size_t oi = best.rounds[ri].ops.size(); oi-- > 0 && budget();) {
        WorkloadSpec cand = best;
        auto& ops = cand.rounds[ri].ops;
        ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(oi));
        progress |= accept(std::move(cand));
      }
    }
    return progress;
  }

  bool simplify_globals() {
    bool progress = false;
    if (best.faults || best.nic_death) {
      WorkloadSpec cand = best;
      cand.faults = false;
      cand.nic_death = false;
      progress |= accept(std::move(cand));
    }
    if (best.shm_intra_node) {
      WorkloadSpec cand = best;
      cand.shm_intra_node = false;
      progress |= accept(std::move(cand));
    }
    for (std::size_t ri = 0; ri < best.rounds.size() && budget(); ++ri) {
      if (best.rounds[ri].stray_sig_rank < 0) continue;
      WorkloadSpec cand = best;
      cand.rounds[ri].stray_sig_rank = -1;
      progress |= accept(std::move(cand));
    }
    return progress;
  }

  bool edit_op(std::size_t ri, std::size_t oi,
               const std::function<void(OpSpec&)>& fn) {
    WorkloadSpec cand = best;
    fn(cand.rounds[ri].ops[oi]);
    return accept(std::move(cand));
  }

  bool edit_round(std::size_t ri, const std::function<void(RoundSpec&)>& fn) {
    WorkloadSpec cand = best;
    fn(cand.rounds[ri]);
    return accept(std::move(cand));
  }

  /// Scenario-pack rounds carry their own parameters; halving them keeps
  /// the kind while melting payload sizes, micro-batch counts, steal counts
  /// and tree arity toward the validate() floors.
  bool simplify_rounds() {
    bool progress = false;
    for (std::size_t ri = 0; ri < best.rounds.size() && budget(); ++ri) {
      const RoundSpec snap = best.rounds[ri];
      switch (snap.kind) {
        case RoundSpec::Kind::kAllreduceRing:
        case RoundSpec::Kind::kAllreduceTree:
        case RoundSpec::Kind::kAlltoall:
          if (snap.size > 1) {
            progress |= edit_round(ri, [](RoundSpec& r) { r.size /= 2; });
          }
          break;
        case RoundSpec::Kind::kFaaCombine:
          if (snap.count > 1) {
            progress |= edit_round(ri, [](RoundSpec& r) { r.count /= 2; });
          }
          if (snap.depth > 2) {
            progress |= edit_round(ri, [](RoundSpec& r) { r.depth = 2; });
          }
          break;
        case RoundSpec::Kind::kBarrierTree:
          if (snap.depth > 2) {
            progress |= edit_round(ri, [](RoundSpec& r) { r.depth = 2; });
          }
          break;
        case RoundSpec::Kind::kSteal:
          if (snap.size > 1) {
            progress |= edit_round(ri, [](RoundSpec& r) { r.size /= 2; });
          }
          if (snap.count > 1) {
            progress |= edit_round(ri, [](RoundSpec& r) { r.count /= 2; });
          }
          break;
        case RoundSpec::Kind::kPipeline:
          if (snap.size > 1) {
            progress |= edit_round(ri, [](RoundSpec& r) { r.size /= 2; });
          }
          if (snap.count > 1) {
            progress |= edit_round(ri, [](RoundSpec& r) { r.count /= 2; });
          }
          if (snap.depth > 1) {
            progress |= edit_round(ri, [](RoundSpec& r) { r.depth = 1; });
          }
          break;
        default:
          break;
      }
    }
    return progress;
  }

  bool simplify_ops() {
    bool progress = false;
    for (std::size_t ri = 0; ri < best.rounds.size() && budget(); ++ri) {
      if (best.rounds[ri].kind != RoundSpec::Kind::kXfer) continue;
      for (std::size_t oi = 0; oi < best.rounds[ri].ops.size() && budget();
           ++oi) {
        const OpSpec snap = best.rounds[ri].ops[oi];
        if (snap.force_split != 0) {
          progress |= edit_op(ri, oi, [](OpSpec& o) { o.force_split = 0; });
        }
        if (snap.nic != -1) {
          progress |= edit_op(ri, oi, [](OpSpec& o) { o.nic = -1; });
        }
        // Shrink sizes toward the smallest that still reproduces; a
        // corrupted payload needs at least one byte to flip.
        if (snap.size > 1) {
          const std::uint64_t floor_sz = snap.corrupt ? 1 : 0;
          if (edit_op(ri, oi, [&](OpSpec& o) { o.size = floor_sz; })) {
            progress = true;
          } else if (snap.size > 8 &&
                     edit_op(ri, oi, [](OpSpec& o) { o.size /= 2; })) {
            progress = true;
          }
        }
        if (snap.local_notify) {
          progress |= edit_op(ri, oi, [](OpSpec& o) { o.local_notify = false; });
        }
        if (snap.remote_notify) {
          progress |= edit_op(ri, oi, [](OpSpec& o) { o.remote_notify = false; });
        }
      }
    }
    return progress;
  }
};

}  // namespace

WorkloadSpec shrink(const WorkloadSpec& failing, const FailPred& still_fails,
                    const ShrinkOptions& opt, ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& st = stats ? *stats : local;
  Shrinker s{still_fails, opt, st, failing};
  bool progress = true;
  while (progress && s.budget()) {
    progress = false;
    progress |= s.drop_rounds();
    progress |= s.drop_ops();
    progress |= s.simplify_globals();
    progress |= s.simplify_ops();
    progress |= s.simplify_rounds();
  }
  return s.best;
}

}  // namespace unr::check
