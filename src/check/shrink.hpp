// Failing-seed shrinker: greedy delta-debugging over the explicit op list.
//
// Because a workload is a concrete list of rounds and ops (not a seed that
// re-rolls everything downstream), the minimizer can delete one element at a
// time and the rest of the workload replays byte-identically. The shrinker
// runs removal and simplification passes to a fixpoint, keeping every edit
// for which the caller's predicate still reports "fails".
#pragma once

#include <cstddef>
#include <functional>

#include "check/workload.hpp"

namespace unr::check {

struct ShrinkOptions {
  /// Hard cap on predicate evaluations (each one replays the workload).
  std::size_t max_attempts = 500;
};

struct ShrinkStats {
  std::size_t attempts = 0;   ///< predicate evaluations spent
  std::size_t successes = 0;  ///< edits the predicate accepted
};

/// "Does this candidate still fail?" Must be deterministic — the same spec
/// must keep failing the same way (the simulator's seeded determinism
/// guarantees this for real failures).
using FailPred = std::function<bool(const WorkloadSpec&)>;

/// Minimize `failing` while `still_fails` holds. Passes, repeated to
/// fixpoint: drop whole rounds, drop individual ops, switch off faults /
/// NIC death / shm, clear stray-signal marks, then per-op simplification
/// (unforce split, unpin NIC, shrink sizes, drop notifications). Every
/// candidate is validate()d before it is run.
WorkloadSpec shrink(const WorkloadSpec& failing, const FailPred& still_fails,
                    const ShrinkOptions& opt = {},
                    ShrinkStats* stats = nullptr);

}  // namespace unr::check
