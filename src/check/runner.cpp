#include "check/runner.hpp"

#include <cstring>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "check/oracle.hpp"
#include "common/log.hpp"
#include "common/profile.hpp"
#include "runtime/window.hpp"
#include "runtime/world.hpp"
#include "unr/collectives.hpp"
#include "unr/unr.hpp"

namespace unr::check {
namespace {

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnv(std::uint64_t& h, const void* p, std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= kFnvPrime;
  }
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) { fnv(h, &v, sizeof(v)); }

// Tag plan: Blk handles and two-sided payloads each get a dedicated tag per
// (round, op) so nothing can cross-match. Both planes stay far below
// runtime::kInternalTagBase (1 << 28); validate() bounds round/op counts.
int blk_tag(std::size_t round, std::size_t op) {
  return (1 << 20) + static_cast<int>(round) * 256 + static_cast<int>(op);
}
int send_tag(std::size_t round, std::size_t op) {
  return (1 << 21) + static_cast<int>(round) * 256 + static_cast<int>(op);
}

std::string op_desc(std::size_t i, const OpSpec& op) {
  std::ostringstream os;
  os << "op " << i << " (" << op_kind_name(op.kind) << " a=" << op.a
     << " b=" << op.b << " size=" << op.size << ")";
  return os.str();
}

/// Everything the per-rank body needs; lives on run_workload's stack. The
/// kernel runs one actor at a time, so ranks may touch shared vectors
/// without locks (same rule the rest of the simulator relies on).
struct Ctx {
  const WorkloadSpec& spec;
  const RunOptions& opt;
  const Oracle& oracle;
  unrlib::Unr& unr;
  std::vector<std::vector<std::byte>>& region;
  std::vector<std::vector<std::uint64_t>>& digests;
  std::vector<std::string>& violations;
  bool window_needed = false;
  std::size_t max_wslot = 0;
  bool rma_barrier_needed = false;

  void viol(std::size_t round, int rank, const std::string& msg) {
    std::ostringstream os;
    os << "round " << round << " rank " << rank << ": " << msg;
    violations.push_back(os.str());
  }
};

void run_xfer_round(runtime::Rank& r, Ctx& c, std::size_t ri,
                    const RoundSpec& round, unrlib::MemHandle& mh,
                    std::uint64_t& dig) {
  using unrlib::kNoSig;
  const int self = r.id();
  auto& mine = c.region[static_cast<std::size_t>(self)];
  const std::size_t nops = round.ops.size();

  // Two fresh signals, armed with the oracle's exact expected counts — the
  // MMAS accounting identity makes "counter == 0 after the waits" the check.
  const Oracle::Events ev = c.oracle.expected_events(ri, self);
  const unrlib::SigId sig_in =
      ev.arrivals > 0 ? c.unr.sig_init(self, ev.arrivals, c.spec.sig_n_bits)
                      : kNoSig;
  const unrlib::SigId sig_loc =
      ev.locals > 0 ? c.unr.sig_init(self, ev.locals, c.spec.sig_n_bits)
                    : kNoSig;

  // Fill every slot this rank sources (PUT: at a; GET: at b). The corrupt
  // mutation flips one transmitted byte AFTER the fill — the oracle keeps
  // the clean expectation, so the flip must surface at the lander.
  for (const OpSpec& op : round.ops) {
    if (op.kind == OpSpec::Kind::kSend || op.size == 0) continue;
    const int src_rank = op.kind == OpSpec::Kind::kPut ? op.a : op.b;
    if (src_rank != self) continue;
    const std::span<std::byte> s(mine.data() + op.src_off, op.size);
    Oracle::fill(s, op.pattern);
    if (op.corrupt) s[op.size / 2] ^= std::byte{0x20};
  }

  // Blk exchange: the peer side (b) builds the remote Blk — binding its own
  // arrival signal when the op is notified — and ships it to the issuer.
  // Two-sided recvs are posted up front so sends never wait on matching.
  std::vector<runtime::RequestPtr> pre;   // Blk handles; gate op issue
  std::vector<runtime::RequestPtr> post;  // two-sided payloads
  std::vector<unrlib::Blk> owned(nops), needed(nops);
  std::vector<std::vector<std::byte>> sbuf(nops), rbuf(nops);
  for (std::size_t i = 0; i < nops; ++i) {
    const OpSpec& op = round.ops[i];
    if (op.kind == OpSpec::Kind::kSend) {
      if (op.b == self) {
        rbuf[i].assign(op.size, std::byte{0});
        post.push_back(r.irecv(op.a, send_tag(ri, i), rbuf[i].data(), op.size));
      }
      continue;
    }
    if (op.b == self) {
      const std::uint64_t off =
          op.kind == OpSpec::Kind::kPut ? op.dst_off : op.src_off;
      owned[i] = c.unr.blk_init(self, mh, off, op.size,
                                op.remote_notify ? sig_in : kNoSig);
      pre.push_back(r.isend(op.a, blk_tag(ri, i), &owned[i],
                            sizeof(unrlib::Blk)));
    }
    if (op.a == self) {
      pre.push_back(r.irecv(op.b, blk_tag(ri, i), &needed[i],
                            sizeof(unrlib::Blk)));
    }
  }
  r.wait_all(pre);

  // Issue in spec order.
  for (std::size_t i = 0; i < nops; ++i) {
    const OpSpec& op = round.ops[i];
    if (op.a != self) continue;
    if (op.kind == OpSpec::Kind::kSend) {
      sbuf[i].assign(op.size, std::byte{0});
      Oracle::fill(sbuf[i], op.pattern);
      if (op.corrupt && op.size > 0) sbuf[i][op.size / 2] ^= std::byte{0x20};
      post.push_back(r.isend(op.b, send_tag(ri, i), sbuf[i].data(), op.size));
      continue;
    }
    unrlib::XferOptions xo;
    xo.use_local_blk_sig = false;
    if (op.local_notify) xo.local_sig = sig_loc;
    xo.force_split = op.force_split;
    xo.nic = op.nic;
    if (op.kind == OpSpec::Kind::kPut) {
      const unrlib::Blk lblk = c.unr.blk_init(self, mh, op.src_off, op.size);
      c.unr.put(self, lblk, needed[i], xo);
    } else {
      const unrlib::Blk lblk = c.unr.blk_init(self, mh, op.dst_off, op.size);
      c.unr.get(self, lblk, needed[i], xo);
    }
  }

  // Waits. sig_wait_for turns a wedged transfer into a shrinkable violation
  // instead of a hang.
  if (sig_in != kNoSig && !c.unr.sig_wait_for(self, sig_in, c.opt.wait_timeout)) {
    c.viol(ri, self, "arrival-signal timeout, counter=" +
                         std::to_string(c.unr.sig_counter(self, sig_in)));
  }
  if (sig_loc != kNoSig &&
      !c.unr.sig_wait_for(self, sig_loc, c.opt.wait_timeout)) {
    c.viol(ri, self, "local-signal timeout, counter=" +
                         std::to_string(c.unr.sig_counter(self, sig_loc)));
  }
  r.wait_all(post);

  // Mutation hook: one stray single-op addend after the waits; the counter
  // check below must flag the signal sitting at -1.
  if (round.stray_sig_rank == self) {
    const unrlib::SigId tgt = sig_in != kNoSig ? sig_in : sig_loc;
    if (tgt != kNoSig) c.unr.apply_notification(r.node_id(), tgt, 0);
  }

  // The barrier orders every verifiable landing (each is covered by a signal
  // wait on some rank) before anyone reads the landed bytes.
  r.barrier();

  std::size_t bad = 0;
  for (std::size_t i = 0; i < nops; ++i) {
    const OpSpec& op = round.ops[i];
    if (op.kind == OpSpec::Kind::kSend && op.b == self) {
      if (!Oracle::check(rbuf[i], op.pattern, bad)) {
        c.viol(ri, self, op_desc(i, op) + ": recv payload mismatch at byte " +
                             std::to_string(bad));
      }
      fnv(dig, rbuf[i].data(), rbuf[i].size());
    } else if (op.kind == OpSpec::Kind::kPut && op.b == self &&
               Oracle::verifiable(op)) {
      const std::span<const std::byte> s(mine.data() + op.dst_off, op.size);
      if (!Oracle::check(s, op.pattern, bad)) {
        c.viol(ri, self, op_desc(i, op) + ": PUT landing mismatch at byte " +
                             std::to_string(bad));
      }
      fnv(dig, s.data(), s.size());
    } else if (op.kind == OpSpec::Kind::kGet && op.a == self &&
               Oracle::verifiable(op)) {
      const std::span<const std::byte> s(mine.data() + op.dst_off, op.size);
      if (!Oracle::check(s, op.pattern, bad)) {
        c.viol(ri, self, op_desc(i, op) + ": GET landing mismatch at byte " +
                             std::to_string(bad));
      }
      fnv(dig, s.data(), s.size());
    }
    // Wild-write detector: a source slot must come back byte-identical
    // (skip slots we corrupted ourselves).
    if (op.kind != OpSpec::Kind::kSend && !op.corrupt && op.size > 0) {
      const int src_rank = op.kind == OpSpec::Kind::kPut ? op.a : op.b;
      if (src_rank == self) {
        const std::span<const std::byte> s(mine.data() + op.src_off, op.size);
        if (!Oracle::check(s, op.pattern, bad)) {
          c.viol(ri, self, op_desc(i, op) + ": SOURCE slot modified at byte " +
                               std::to_string(bad));
        }
      }
    }
  }

  const auto check_sig = [&](unrlib::SigId sig, const char* which) {
    if (sig == kNoSig) return;
    const std::int64_t ctr = c.unr.sig_counter(self, sig);
    if (ctr != 0) {
      c.viol(ri, self, std::string(which) + "-signal counter " +
                           std::to_string(ctr) + " after waits (expected 0)");
    }
    const std::uint64_t warn = c.unr.sig_at(r.node_id(), sig).warnings();
    if (warn != 0) {
      c.viol(ri, self, std::string(which) + "-signal raised " +
                           std::to_string(warn) + " overflow warning(s)");
    }
    fnv_u64(dig, static_cast<std::uint64_t>(ctr));
  };
  check_sig(sig_in, "arrival");
  check_sig(sig_loc, "local");
}

void run_rank(runtime::Rank& r, Ctx& c) {
  const int self = r.id();
  const int P = r.nranks();
  auto& mine = c.region[static_cast<std::size_t>(self)];
  unrlib::MemHandle mh = c.unr.mem_reg(self, mine.data(), mine.size());

  // Persistent structures any round might need (collective construction).
  std::vector<std::byte> expose;
  std::shared_ptr<runtime::Window> win;
  if (c.window_needed) {
    expose.assign(static_cast<std::size_t>(P) * c.max_wslot, std::byte{0});
    win = runtime::Window::create(r.comm(), self, expose.data(), expose.size());
  }
  std::optional<unrlib::RmaBarrier> rbar;
  if (c.rma_barrier_needed) rbar.emplace(c.unr, r);

  for (std::size_t ri = 0; ri < c.spec.rounds.size(); ++ri) {
    const RoundSpec& round = c.spec.rounds[ri];
    std::uint64_t& dig = c.digests[ri][static_cast<std::size_t>(self)];
    std::size_t bad = 0;
    switch (round.kind) {
      case RoundSpec::Kind::kXfer:
        run_xfer_round(r, c, ri, round, mh, dig);
        break;
      case RoundSpec::Kind::kBarrier:
        r.barrier();
        break;
      case RoundSpec::Kind::kRmaBarrier:
        rbar->run();
        break;
      case RoundSpec::Kind::kBcast: {
        std::vector<std::byte> buf(round.size);
        const std::uint64_t pat = c.oracle.coll_pattern(ri, round.root);
        if (self == round.root) Oracle::fill(buf, pat);
        r.bcast(round.root, buf.data(), buf.size());
        if (!Oracle::check(buf, pat, bad)) {
          c.viol(ri, self,
                 "bcast payload mismatch at byte " + std::to_string(bad));
        }
        fnv(dig, buf.data(), buf.size());
        break;
      }
      case RoundSpec::Kind::kAllgather: {
        std::vector<std::byte> one(round.size);
        std::vector<std::byte> all(static_cast<std::size_t>(P) * round.size);
        Oracle::fill(one, c.oracle.coll_pattern(ri, self));
        r.allgather(one.data(), all.data(), round.size);
        for (int o = 0; o < P; ++o) {
          const std::span<const std::byte> s(
              all.data() + static_cast<std::size_t>(o) * round.size,
              round.size);
          if (!Oracle::check(s, c.oracle.coll_pattern(ri, o), bad)) {
            c.viol(ri, self, "allgather slot " + std::to_string(o) +
                                 " mismatch at byte " + std::to_string(bad));
          }
        }
        fnv(dig, all.data(), all.size());
        break;
      }
      case RoundSpec::Kind::kAllreduce: {
        std::vector<double> v(round.size);
        for (std::size_t j = 0; j < v.size(); ++j) {
          v[j] = c.oracle.allreduce_contrib(ri, self, j);
        }
        r.allreduce_sum(v.data(), v.size());
        for (std::size_t j = 0; j < v.size(); ++j) {
          const double want = c.oracle.allreduce_expected(ri, j);
          if (v[j] != want) {
            std::ostringstream os;
            os << "allreduce[" << j << "] = " << v[j] << ", oracle " << want;
            c.viol(ri, self, os.str());
          }
        }
        fnv(dig, v.data(), v.size() * sizeof(double));
        break;
      }
      case RoundSpec::Kind::kWindow: {
        // Shifted ring: each origin puts into slot 0 of exactly one target,
        // so epochs can reuse the exposure buffer (fences order them).
        const std::size_t slot = round.size;
        const int target = (self + round.root) % P;
        const int origin = (self - round.root + P) % P;
        std::vector<std::byte> src(slot);
        Oracle::fill(src, c.oracle.window_pattern(ri, self));
        win->fence(self);
        win->put(self, target, 0, src.data(), slot);
        win->fence(self);
        // Safe to read before the next epoch: its opening fence cannot
        // complete without this rank's participation.
        const std::span<const std::byte> got(expose.data(), slot);
        if (!Oracle::check(got, c.oracle.window_pattern(ri, origin), bad)) {
          c.viol(ri, self, "window epoch: data from origin " +
                               std::to_string(origin) + " mismatch at byte " +
                               std::to_string(bad));
        }
        fnv(dig, got.data(), got.size());
        break;
      }
    }
  }

  // Drain: unverifiable fire-and-forget tails (non-notified ops, companion
  // messages, rendezvous acks) must land before the pool-conservation
  // checks read the teardown state.
  r.barrier();
  r.kernel().sleep_for(2 * kMs);
  r.barrier();
}

}  // namespace

std::string validate(const WorkloadSpec& spec) {
  const auto err = [](const std::string& m) { return m; };
  if (spec.nodes < 1 || spec.ranks_per_node < 1) return err("bad topology");
  const int P = spec.nranks();
  if (P < 2) return err("need at least 2 ranks");
  if (P > 256) return err("more than 256 ranks");
  if (spec.nics < 1 || spec.nics > 64) return err("bad NIC count");
  if (spec.nic_death && spec.nics < 2) return err("nic_death needs >= 2 NICs");
  if (spec.sig_n_bits < 1 || spec.sig_n_bits > 61) return err("sig_n_bits out of [1, 61]");
  if (spec.region_bytes == 0 || spec.region_bytes > 64 * MiB) return err("bad region size");
  if (spec.rounds.size() > 4096) return err("more than 4096 rounds");
  Oracle oracle(spec);
  for (std::size_t ri = 0; ri < spec.rounds.size(); ++ri) {
    const RoundSpec& round = spec.rounds[ri];
    const auto rerr = [&](const std::string& m) {
      return "round " + std::to_string(ri) + ": " + m;
    };
    if (round.stray_sig_rank < -1 || round.stray_sig_rank >= P) {
      return rerr("stray_sig_rank out of range");
    }
    switch (round.kind) {
      case RoundSpec::Kind::kXfer: {
        if (round.ops.size() > 256) return rerr("more than 256 ops");
        for (std::size_t i = 0; i < round.ops.size(); ++i) {
          const OpSpec& op = round.ops[i];
          const auto oerr = [&](const std::string& m) {
            return rerr("op " + std::to_string(i) + ": " + m);
          };
          if (op.a < 0 || op.a >= P || op.b < 0 || op.b >= P) {
            return oerr("rank out of range");
          }
          if (op.a == op.b) return oerr("self-targeted op");
          if (op.kind == OpSpec::Kind::kSend) {
            if (op.size > 16 * MiB) return oerr("send too large");
          } else {
            if (op.src_off + op.size > spec.region_bytes ||
                op.dst_off + op.size > spec.region_bytes) {
              return oerr("slot outside the registered region");
            }
            if (op.force_split < 0 || op.force_split > 64) {
              return oerr("bad force_split");
            }
            if (op.nic < -1 || op.nic >= spec.nics) return oerr("bad nic pin");
          }
        }
        // Signal capacity: the armed counts must fit the event field.
        for (int rank = 0; rank < P; ++rank) {
          const Oracle::Events ev = oracle.expected_events(ri, rank);
          const std::int64_t cap = std::int64_t{1}
                                   << (spec.sig_n_bits < 62 ? spec.sig_n_bits : 61);
          if (ev.arrivals >= cap || ev.locals >= cap) {
            return rerr("expected events overflow sig_n_bits");
          }
        }
        break;
      }
      case RoundSpec::Kind::kBarrier:
      case RoundSpec::Kind::kRmaBarrier:
        break;
      case RoundSpec::Kind::kBcast:
        if (round.root < 0 || round.root >= P) return rerr("bcast root out of range");
        if (round.size < 1 || round.size > 16 * MiB) return rerr("bad bcast size");
        break;
      case RoundSpec::Kind::kAllgather:
        if (round.size < 1 || round.size > 1 * MiB) return rerr("bad allgather size");
        break;
      case RoundSpec::Kind::kAllreduce:
        if (round.size < 1 || round.size > 64 * KiB) return rerr("bad allreduce count");
        break;
      case RoundSpec::Kind::kWindow:
        if (round.root < 1 || round.root >= P) return rerr("window shift out of [1, P)");
        if (round.size < 1 || round.size > 64 * KiB) return rerr("bad window slot size");
        break;
    }
  }
  return "";
}

RunResult run_workload(const WorkloadSpec& spec, const RunOptions& opt) {
  RunResult out;
  if (const std::string verr = validate(spec); !verr.empty()) {
    out.violations.push_back("invalid spec: " + verr);
    return out;
  }

  // Fault runs exercise warn paths on purpose; keep the console quiet but
  // let genuine errors through.
  const LogLevel prev_level = log_level();
  set_log_level(LogLevel::kError);

  const int P = spec.nranks();
  const std::size_t R = spec.rounds.size();
  const Oracle oracle(spec);
  std::vector<std::string> violations;
  std::vector<std::vector<std::byte>> region(static_cast<std::size_t>(P));
  for (auto& v : region) v.assign(spec.region_bytes, std::byte{0});
  std::vector<std::vector<std::uint64_t>> digests(
      R, std::vector<std::uint64_t>(static_cast<std::size_t>(P), kFnvBasis));

  {
    runtime::World::Config wc;
    wc.nodes = spec.nodes;
    wc.ranks_per_node = spec.ranks_per_node;
    wc.profile = system_profile(spec.profile);
    wc.profile.iface = spec.iface;
    wc.profile.nics_per_node = spec.nics;
    wc.seed = spec.seed;
    if (spec.faults) {
      wc.faults.drop_rate = 0.02;
      wc.faults.delay_rate = 0.05;
      wc.faults.delay_max = 5 * kUs;
      if (spec.nic_death) {
        wc.faults.nic_faults.push_back({spec.nodes - 1, spec.nics - 1, 40 * kUs});
      }
    }
    wc.shards = opt.shards;
    if (opt.trace_out) {
      wc.telemetry.trace.enabled = true;
      wc.telemetry.trace.ring_capacity = opt.trace_ring;
    }
    runtime::World w(wc);

    unrlib::Unr::Config uc;
    uc.channel = opt.channel;
    uc.split_threshold = spec.split_threshold;
    uc.shm_intra_node = spec.shm_intra_node;
    uc.enable_hw_offload = opt.channel == unrlib::ChannelKind::kLevel4;
    unrlib::Unr unr(w, uc);

    Ctx ctx{spec, opt, oracle, unr, region, digests, violations};
    for (const RoundSpec& round : spec.rounds) {
      if (round.kind == RoundSpec::Kind::kWindow) {
        ctx.window_needed = true;
        if (round.size > ctx.max_wslot) ctx.max_wslot = round.size;
      }
      if (round.kind == RoundSpec::Kind::kRmaBarrier) {
        ctx.rma_barrier_needed = true;
      }
    }

    try {
      w.run([&ctx](runtime::Rank& r) { run_rank(r, ctx); });
    } catch (const std::exception& e) {
      // Fail-loud invariants (UNR_CHECK in the kernel/fabric/signals) and
      // deadlock detection surface here.
      violations.push_back(std::string("run aborted: ") + e.what());
    }

    if (opt.check_invariants) {
      const sim::Kernel::PoolDebug kp = w.kernel().pool_debug();
      if (kp.leaked() != 0) {
        std::ostringstream os;
        os << "EventNode pool leak: total=" << kp.total << " free=" << kp.free
           << " pending=" << kp.pending;
        violations.push_back(os.str());
      }
      // Coroutine-frame conservation: every actor fiber must have completed
      // and returned its stack to the pool by the time run() exits — on the
      // abort path too. A live stack here is a fiber the scheduler lost.
      if (kp.live_stacks() != 0) {
        std::ostringstream os;
        os << "fiber stack leak: " << kp.live_stacks() << " of "
           << kp.stacks_total << " coroutine frame(s) never released";
        violations.push_back(os.str());
      }
      const fabric::Fabric::PoolDebug fp = w.fabric().pool_debug();
      if (fp.live_flights() != 0) {
        violations.push_back("fragment conservation: " +
                             std::to_string(fp.live_flights()) +
                             " Flight(s) never released");
      }
      if (fp.live_am_flights() != 0) {
        violations.push_back("fragment conservation: " +
                             std::to_string(fp.live_am_flights()) +
                             " AmFlight(s) never released");
      }
    }

    out.events = w.kernel().event_count();
    out.end_time = w.elapsed();

    // In-memory telemetry capture (the service's streaming path) — read
    // before the World tears the kernel down.
    if (opt.trace_out) {
      std::ostringstream ts;
      w.kernel().telemetry().tracer().write_json(ts);
      *opt.trace_out = ts.str();
    }
    if (opt.metrics_out) {
      std::ostringstream ms;
      w.kernel().telemetry().registry().write_json(ms);
      *opt.metrics_out = ms.str();
    }
  }

  set_log_level(prev_level);

  // Fold per-(round, rank) digests in a fixed order; timing never enters.
  std::uint64_t d = kFnvBasis;
  fnv_u64(d, static_cast<std::uint64_t>(P));
  fnv_u64(d, static_cast<std::uint64_t>(R));
  for (const auto& per_rank : digests) {
    for (const std::uint64_t v : per_rank) fnv_u64(d, v);
  }
  out.digest = d;
  out.violations = std::move(violations);
  out.ok = out.violations.empty();
  return out;
}

std::span<const unrlib::ChannelKind> differential_channels() {
  static constexpr unrlib::ChannelKind kDiff[] = {
      unrlib::ChannelKind::kNative,
      unrlib::ChannelKind::kLevel0,
      unrlib::ChannelKind::kMpiFallback,
  };
  return kDiff;
}

const char* channel_token(unrlib::ChannelKind k) {
  switch (k) {
    case unrlib::ChannelKind::kAuto: return "auto";
    case unrlib::ChannelKind::kNative: return "native";
    case unrlib::ChannelKind::kLevel0: return "level0";
    case unrlib::ChannelKind::kLevel4: return "level4";
    case unrlib::ChannelKind::kMpiFallback: return "fallback";
  }
  return "?";
}

bool channel_from_token(const std::string& s, unrlib::ChannelKind& out) {
  if (s == "auto") out = unrlib::ChannelKind::kAuto;
  else if (s == "native") out = unrlib::ChannelKind::kNative;
  else if (s == "level0") out = unrlib::ChannelKind::kLevel0;
  else if (s == "level4") out = unrlib::ChannelKind::kLevel4;
  else if (s == "fallback") out = unrlib::ChannelKind::kMpiFallback;
  else return false;
  return true;
}

DiffResult run_differential(const WorkloadSpec& spec,
                            std::span<const unrlib::ChannelKind> channels,
                            const RunOptions& base) {
  DiffResult out;
  for (const unrlib::ChannelKind ch : channels) {
    RunOptions o = base;
    o.channel = ch;
    RunResult r = run_workload(spec, o);
    for (const std::string& v : r.violations) {
      out.violations.push_back(std::string(channel_token(ch)) + ": " + v);
    }
    out.runs.emplace_back(ch, std::move(r));
  }
  // Application-visible results must not depend on the notification
  // transport: compare every digest against the first channel's.
  for (std::size_t i = 1; i < out.runs.size(); ++i) {
    if (out.runs[i].second.digest != out.runs[0].second.digest) {
      std::ostringstream os;
      os << "digest mismatch: " << channel_token(out.runs[0].first) << "=0x"
         << std::hex << out.runs[0].second.digest << " vs "
         << channel_token(out.runs[i].first) << "=0x"
         << out.runs[i].second.digest;
      out.violations.push_back(os.str());
    }
  }
  out.ok = out.violations.empty();
  return out;
}

}  // namespace unr::check
