#include "check/runner.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "check/oracle.hpp"
#include "common/log.hpp"
#include "common/profile.hpp"
#include "runtime/window.hpp"
#include "runtime/world.hpp"
#include "unr/collectives.hpp"
#include "unr/unr.hpp"

namespace unr::check {
namespace {

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnv(std::uint64_t& h, const void* p, std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= kFnvPrime;
  }
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) { fnv(h, &v, sizeof(v)); }

// Tag plan: Blk handles and two-sided payloads each get a dedicated tag per
// (round, op) so nothing can cross-match. Both planes stay far below
// runtime::kInternalTagBase (1 << 28); validate() bounds round/op counts.
int blk_tag(std::size_t round, std::size_t op) {
  return (1 << 20) + static_cast<int>(round) * 256 + static_cast<int>(op);
}
int send_tag(std::size_t round, std::size_t op) {
  return (1 << 21) + static_cast<int>(round) * 256 + static_cast<int>(op);
}
// Third plane for the scenario-pack collective rounds (ring steps, tree
// edges, steal events): k < 4096 per round, bounded by validate().
int coll_tag(std::size_t round, std::size_t k) {
  return (1 << 22) + static_cast<int>(round) * 4096 + static_cast<int>(k);
}

std::string op_desc(std::size_t i, const OpSpec& op) {
  std::ostringstream os;
  os << "op " << i << " (" << op_kind_name(op.kind) << " a=" << op.a
     << " b=" << op.b << " size=" << op.size << ")";
  return os.str();
}

/// Everything the per-rank body needs; lives on run_workload's stack. The
/// kernel runs one actor at a time, so ranks may touch shared vectors
/// without locks (same rule the rest of the simulator relies on).
struct Ctx {
  const WorkloadSpec& spec;
  const RunOptions& opt;
  const Oracle& oracle;
  unrlib::Unr& unr;
  std::vector<std::vector<std::byte>>& region;
  std::vector<std::vector<std::uint64_t>>& digests;
  std::vector<std::string>& violations;
  bool window_needed = false;
  std::size_t max_wslot = 0;
  bool rma_barrier_needed = false;

  void viol(std::size_t round, int rank, const std::string& msg) {
    std::ostringstream os;
    os << "round " << round << " rank " << rank << ": " << msg;
    violations.push_back(os.str());
  }
};

void run_xfer_round(runtime::Rank& r, Ctx& c, std::size_t ri,
                    const RoundSpec& round, unrlib::MemHandle& mh,
                    std::uint64_t& dig) {
  using unrlib::kNoSig;
  const int self = r.id();
  auto& mine = c.region[static_cast<std::size_t>(self)];
  const std::size_t nops = round.ops.size();

  // Two fresh signals, armed with the oracle's exact expected counts — the
  // MMAS accounting identity makes "counter == 0 after the waits" the check.
  const Oracle::Events ev = c.oracle.expected_events(ri, self);
  const unrlib::SigId sig_in =
      ev.arrivals > 0 ? c.unr.sig_init(self, ev.arrivals, c.spec.sig_n_bits)
                      : kNoSig;
  const unrlib::SigId sig_loc =
      ev.locals > 0 ? c.unr.sig_init(self, ev.locals, c.spec.sig_n_bits)
                    : kNoSig;

  // Fill every slot this rank sources (PUT: at a; GET: at b). The corrupt
  // mutation flips one transmitted byte AFTER the fill — the oracle keeps
  // the clean expectation, so the flip must surface at the lander.
  for (const OpSpec& op : round.ops) {
    if (op.kind == OpSpec::Kind::kSend || op.size == 0) continue;
    const int src_rank = op.kind == OpSpec::Kind::kPut ? op.a : op.b;
    if (src_rank != self) continue;
    const std::span<std::byte> s(mine.data() + op.src_off, op.size);
    Oracle::fill(s, op.pattern);
    if (op.corrupt) s[op.size / 2] ^= std::byte{0x20};
  }

  // Blk exchange: the peer side (b) builds the remote Blk — binding its own
  // arrival signal when the op is notified — and ships it to the issuer.
  // Two-sided recvs are posted up front so sends never wait on matching.
  std::vector<runtime::RequestPtr> pre;   // Blk handles; gate op issue
  std::vector<runtime::RequestPtr> post;  // two-sided payloads
  std::vector<unrlib::Blk> owned(nops), needed(nops);
  std::vector<std::vector<std::byte>> sbuf(nops), rbuf(nops);
  for (std::size_t i = 0; i < nops; ++i) {
    const OpSpec& op = round.ops[i];
    if (op.kind == OpSpec::Kind::kSend) {
      if (op.b == self) {
        rbuf[i].assign(op.size, std::byte{0});
        post.push_back(r.irecv(op.a, send_tag(ri, i), rbuf[i].data(), op.size));
      }
      continue;
    }
    if (op.b == self) {
      const std::uint64_t off =
          op.kind == OpSpec::Kind::kPut ? op.dst_off : op.src_off;
      owned[i] = c.unr.blk_init(self, mh, off, op.size,
                                op.remote_notify ? sig_in : kNoSig);
      pre.push_back(r.isend(op.a, blk_tag(ri, i), &owned[i],
                            sizeof(unrlib::Blk)));
    }
    if (op.a == self) {
      pre.push_back(r.irecv(op.b, blk_tag(ri, i), &needed[i],
                            sizeof(unrlib::Blk)));
    }
  }
  r.wait_all(pre);

  // Issue in spec order.
  for (std::size_t i = 0; i < nops; ++i) {
    const OpSpec& op = round.ops[i];
    if (op.a != self) continue;
    if (op.kind == OpSpec::Kind::kSend) {
      sbuf[i].assign(op.size, std::byte{0});
      Oracle::fill(sbuf[i], op.pattern);
      if (op.corrupt && op.size > 0) sbuf[i][op.size / 2] ^= std::byte{0x20};
      post.push_back(r.isend(op.b, send_tag(ri, i), sbuf[i].data(), op.size));
      continue;
    }
    unrlib::XferOptions xo;
    xo.use_local_blk_sig = false;
    if (op.local_notify) xo.local_sig = sig_loc;
    xo.force_split = op.force_split;
    xo.nic = op.nic;
    if (op.kind == OpSpec::Kind::kPut) {
      const unrlib::Blk lblk = c.unr.blk_init(self, mh, op.src_off, op.size);
      c.unr.put(self, lblk, needed[i], xo);
    } else {
      const unrlib::Blk lblk = c.unr.blk_init(self, mh, op.dst_off, op.size);
      c.unr.get(self, lblk, needed[i], xo);
    }
  }

  // Waits. sig_wait_for turns a wedged transfer into a shrinkable violation
  // instead of a hang.
  if (sig_in != kNoSig && !c.unr.sig_wait_for(self, sig_in, c.opt.wait_timeout)) {
    c.viol(ri, self, "arrival-signal timeout, counter=" +
                         std::to_string(c.unr.sig_counter(self, sig_in)));
  }
  if (sig_loc != kNoSig &&
      !c.unr.sig_wait_for(self, sig_loc, c.opt.wait_timeout)) {
    c.viol(ri, self, "local-signal timeout, counter=" +
                         std::to_string(c.unr.sig_counter(self, sig_loc)));
  }
  r.wait_all(post);

  // Mutation hook: one stray single-op addend after the waits; the counter
  // check below must flag the signal sitting at -1.
  if (round.stray_sig_rank == self) {
    const unrlib::SigId tgt = sig_in != kNoSig ? sig_in : sig_loc;
    if (tgt != kNoSig) c.unr.apply_notification(r.node_id(), tgt, 0);
  }

  // The barrier orders every verifiable landing (each is covered by a signal
  // wait on some rank) before anyone reads the landed bytes.
  r.barrier();

  std::size_t bad = 0;
  for (std::size_t i = 0; i < nops; ++i) {
    const OpSpec& op = round.ops[i];
    if (op.kind == OpSpec::Kind::kSend && op.b == self) {
      if (!Oracle::check(rbuf[i], op.pattern, bad)) {
        c.viol(ri, self, op_desc(i, op) + ": recv payload mismatch at byte " +
                             std::to_string(bad));
      }
      fnv(dig, rbuf[i].data(), rbuf[i].size());
    } else if (op.kind == OpSpec::Kind::kPut && op.b == self &&
               Oracle::verifiable(op)) {
      const std::span<const std::byte> s(mine.data() + op.dst_off, op.size);
      if (!Oracle::check(s, op.pattern, bad)) {
        c.viol(ri, self, op_desc(i, op) + ": PUT landing mismatch at byte " +
                             std::to_string(bad));
      }
      fnv(dig, s.data(), s.size());
    } else if (op.kind == OpSpec::Kind::kGet && op.a == self &&
               Oracle::verifiable(op)) {
      const std::span<const std::byte> s(mine.data() + op.dst_off, op.size);
      if (!Oracle::check(s, op.pattern, bad)) {
        c.viol(ri, self, op_desc(i, op) + ": GET landing mismatch at byte " +
                             std::to_string(bad));
      }
      fnv(dig, s.data(), s.size());
    }
    // Wild-write detector: a source slot must come back byte-identical
    // (skip slots we corrupted ourselves).
    if (op.kind != OpSpec::Kind::kSend && !op.corrupt && op.size > 0) {
      const int src_rank = op.kind == OpSpec::Kind::kPut ? op.a : op.b;
      if (src_rank == self) {
        const std::span<const std::byte> s(mine.data() + op.src_off, op.size);
        if (!Oracle::check(s, op.pattern, bad)) {
          c.viol(ri, self, op_desc(i, op) + ": SOURCE slot modified at byte " +
                               std::to_string(bad));
        }
      }
    }
  }

  const auto check_sig = [&](unrlib::SigId sig, const char* which) {
    if (sig == kNoSig) return;
    const std::int64_t ctr = c.unr.sig_counter(self, sig);
    if (ctr != 0) {
      c.viol(ri, self, std::string(which) + "-signal counter " +
                           std::to_string(ctr) + " after waits (expected 0)");
    }
    const std::uint64_t warn = c.unr.sig_at(r.node_id(), sig).warnings();
    if (warn != 0) {
      c.viol(ri, self, std::string(which) + "-signal raised " +
                           std::to_string(warn) + " overflow warning(s)");
    }
    fnv_u64(dig, static_cast<std::uint64_t>(ctr));
  };
  check_sig(sig_in, "arrival");
  check_sig(sig_loc, "local");
}

// --- Scenario-pack rounds (distributed-AI + scalable-sync traffic) ---
//
// Shared discipline: every protocol below allocates its own staging arena
// (registered for the round, deregistered after the closing barrier), arms
// fresh signals with the oracle's exact expected counts, and only reads a
// landed buffer after ITS OWN signal wait — so verification is ordered on
// every channel level and the digests stay differential-safe. Source buffers
// are snapshots never modified after issue, so delivery-time reads can never
// race buffer reuse.

/// sig_wait_for that converts a wedge into a violation (hang detection).
void wait_sig(runtime::Rank& r, Ctx& c, std::size_t ri, unrlib::SigId sig,
              const char* what) {
  if (sig == unrlib::kNoSig) return;
  const int self = r.id();
  if (!c.unr.sig_wait_for(self, sig, c.opt.wait_timeout)) {
    c.viol(ri, self, std::string(what) + " timeout, counter=" +
                         std::to_string(c.unr.sig_counter(self, sig)));
  }
}

/// MMAS accounting close-out: counter must sit exactly at 0, no overflow
/// warnings; the counter is folded into the digest.
void fold_sig(runtime::Rank& r, Ctx& c, std::size_t ri, unrlib::SigId sig,
              const char* what, std::uint64_t& dig) {
  if (sig == unrlib::kNoSig) return;
  const int self = r.id();
  const std::int64_t ctr = c.unr.sig_counter(self, sig);
  if (ctr != 0) {
    c.viol(ri, self, std::string(what) + "-signal counter " +
                         std::to_string(ctr) + " after waits (expected 0)");
  }
  const std::uint64_t warn = c.unr.sig_at(r.node_id(), sig).warnings();
  if (warn != 0) {
    c.viol(ri, self, std::string(what) + "-signal raised " +
                         std::to_string(warn) + " overflow warning(s)");
  }
  fnv_u64(dig, static_cast<std::uint64_t>(ctr));
}

/// Chunked ring allreduce (reduce-scatter + allgather) over notified PUTs.
/// 2(P-1) steps; per-step receive slots and arrival signals (armed 1) keep
/// the left neighbor free to run a step ahead — the ring's pipelining.
void run_ar_ring_round(runtime::Rank& r, Ctx& c, std::size_t ri,
                       const RoundSpec& round, std::uint64_t& dig) {
  using unrlib::kNoSig;
  const int self = r.id();
  const int P = r.nranks();
  const std::size_t n = round.size;  // doubles
  const std::size_t chunk = (n + static_cast<std::size_t>(P) - 1) /
                            static_cast<std::size_t>(P);
  const auto cbeg = [&](int ci) {
    return std::min(n, static_cast<std::size_t>(ci) * chunk);
  };
  const auto clen = [&](int ci) {
    return std::min(n, (static_cast<std::size_t>(ci) + 1) * chunk) - cbeg(ci);
  };
  const int right = (self + 1) % P;
  const int left = (self - 1 + P) % P;
  const int steps = 2 * (P - 1);
  const int own = (self + 1) % P;  // chunk this rank owns after reduce-scatter
  // Chunk indices flowing through me at step s (allgather after step P-2).
  const auto recv_chunk = [&](int s) {
    return s < P - 1 ? (self - s - 1 + 2 * P) % P
                     : (own - (s - (P - 1)) - 1 + 2 * P) % P;
  };
  const auto send_chunk = [&](int s) {
    return s < P - 1 ? (self - s + 2 * P) % P
                     : (own - (s - (P - 1)) + 2 * P) % P;
  };

  std::vector<double> acc(n);
  for (std::size_t j = 0; j < n; ++j)
    acc[j] = c.oracle.allreduce_contrib(ri, self, j);

  std::vector<double> rstage(static_cast<std::size_t>(steps) * chunk, 0.0);
  std::vector<double> sstage(static_cast<std::size_t>(steps) * chunk, 0.0);
  const unrlib::MemHandle rmh =
      c.unr.mem_reg(self, rstage.data(), rstage.size() * sizeof(double));
  const unrlib::MemHandle smh =
      c.unr.mem_reg(self, sstage.data(), sstage.size() * sizeof(double));

  std::vector<unrlib::SigId> sig(static_cast<std::size_t>(steps));
  for (int s = 0; s < steps; ++s)
    sig[static_cast<std::size_t>(s)] = c.unr.sig_init(self, 1, c.spec.sig_n_bits);

  // Blk exchange: my step-s receive slot (bound to sig[s]) goes to LEFT, who
  // puts into it at step s; I collect RIGHT's slots symmetrically.
  std::vector<unrlib::Blk> owned(static_cast<std::size_t>(steps)),
      needed(static_cast<std::size_t>(steps));
  std::vector<runtime::RequestPtr> pre;
  for (int s = 0; s < steps; ++s) {
    const auto si = static_cast<std::size_t>(s);
    owned[si] = c.unr.blk_init(self, rmh, si * chunk * sizeof(double),
                               clen(recv_chunk(s)) * sizeof(double), sig[si]);
    pre.push_back(r.isend(left, coll_tag(ri, si), &owned[si], sizeof(unrlib::Blk)));
    pre.push_back(r.irecv(right, coll_tag(ri, si), &needed[si], sizeof(unrlib::Blk)));
  }
  r.wait_all(pre);

  for (int s = 0; s < steps; ++s) {
    const auto si = static_cast<std::size_t>(s);
    const int sc = send_chunk(s);
    double* snap = sstage.data() + si * chunk;
    std::memcpy(snap, acc.data() + cbeg(sc), clen(sc) * sizeof(double));
    const unrlib::Blk lblk = c.unr.blk_init(
        self, smh, si * chunk * sizeof(double), clen(sc) * sizeof(double));
    c.unr.put(self, lblk, needed[si]);
    wait_sig(r, c, ri, sig[si], "ar_ring step");
    const int rc = recv_chunk(s);
    const double* got = rstage.data() + si * chunk;
    if (s < P - 1) {
      for (std::size_t k = 0; k < clen(rc); ++k) acc[cbeg(rc) + k] += got[k];
    } else {
      std::memcpy(acc.data() + cbeg(rc), got, clen(rc) * sizeof(double));
    }
  }

  for (std::size_t j = 0; j < n; ++j) {
    const double want = c.oracle.allreduce_expected(ri, j);
    if (acc[j] != want) {
      std::ostringstream os;
      os << "ar_ring[" << j << "] = " << acc[j] << ", oracle " << want;
      c.viol(ri, self, os.str());
    }
  }
  fnv(dig, acc.data(), n * sizeof(double));
  for (int s = 0; s < steps; ++s)
    fold_sig(r, c, ri, sig[static_cast<std::size_t>(s)], "ar_ring", dig);
  r.barrier();
  c.unr.mem_dereg(self, rmh);
  c.unr.mem_dereg(self, smh);
}

/// Binary-tree allreduce: notified-PUT reduce up to the root, then the
/// result broadcast back down the same tree.
void run_ar_tree_round(runtime::Rank& r, Ctx& c, std::size_t ri,
                       const RoundSpec& round, std::uint64_t& dig) {
  using unrlib::kNoSig;
  constexpr int kArity = 2;
  const int self = r.id();
  const int P = r.nranks();
  const std::size_t n = round.size;  // doubles
  const int v = Oracle::vrank_of(self, round.root, P);
  const int pv = Oracle::tree_parent(v, kArity);
  const int parent = pv < 0 ? -1 : Oracle::rank_of(pv, round.root, P);
  std::vector<int> children;
  for (int k = 1; k <= kArity; ++k) {
    const int cv = kArity * v + k;
    if (cv < P) children.push_back(Oracle::rank_of(cv, round.root, P));
  }
  const std::size_t nc = children.size();

  // Arena layout (doubles): [gather slots nc*n][result n][up snapshot n].
  std::vector<double> arena((nc + 2) * n, 0.0);
  double* gather = arena.data();
  double* res = arena.data() + nc * n;
  double* up = arena.data() + (nc + 1) * n;
  const unrlib::MemHandle mh =
      c.unr.mem_reg(self, arena.data(), arena.size() * sizeof(double));
  const unrlib::SigId sig_gather =
      nc > 0 ? c.unr.sig_init(self, static_cast<std::int64_t>(nc),
                              c.spec.sig_n_bits)
             : kNoSig;
  const unrlib::SigId sig_down =
      parent >= 0 ? c.unr.sig_init(self, 1, c.spec.sig_n_bits) : kNoSig;

  // Blk exchange: each child gets its dedicated gather slot at the parent
  // and ships its result slot up for the broadcast-down.
  std::vector<unrlib::Blk> gather_owned(nc), child_res(nc);
  unrlib::Blk res_owned{}, parent_slot{};
  std::vector<runtime::RequestPtr> pre;
  for (std::size_t i = 0; i < nc; ++i) {
    const auto cv = static_cast<std::size_t>(
        Oracle::vrank_of(children[i], round.root, P));
    gather_owned[i] = c.unr.blk_init(self, mh, i * n * sizeof(double),
                                     n * sizeof(double), sig_gather);
    pre.push_back(r.isend(children[i], coll_tag(ri, 2 * cv), &gather_owned[i],
                          sizeof(unrlib::Blk)));
    pre.push_back(r.irecv(children[i], coll_tag(ri, 2 * cv + 1), &child_res[i],
                          sizeof(unrlib::Blk)));
  }
  if (parent >= 0) {
    const auto sv = static_cast<std::size_t>(v);
    res_owned = c.unr.blk_init(self, mh, nc * n * sizeof(double),
                               n * sizeof(double), sig_down);
    pre.push_back(r.isend(parent, coll_tag(ri, 2 * sv + 1), &res_owned,
                          sizeof(unrlib::Blk)));
    pre.push_back(r.irecv(parent, coll_tag(ri, 2 * sv), &parent_slot,
                          sizeof(unrlib::Blk)));
  }
  r.wait_all(pre);

  std::vector<double> acc(n);
  for (std::size_t j = 0; j < n; ++j)
    acc[j] = c.oracle.allreduce_contrib(ri, self, j);
  if (nc > 0) {
    wait_sig(r, c, ri, sig_gather, "ar_tree gather");
    for (std::size_t i = 0; i < nc; ++i)
      for (std::size_t j = 0; j < n; ++j) acc[j] += gather[i * n + j];
  }
  if (parent >= 0) {
    std::memcpy(up, acc.data(), n * sizeof(double));
    const unrlib::Blk up_blk = c.unr.blk_init(
        self, mh, (nc + 1) * n * sizeof(double), n * sizeof(double));
    c.unr.put(self, up_blk, parent_slot);
    wait_sig(r, c, ri, sig_down, "ar_tree down");  // res filled by parent
  } else {
    std::memcpy(res, acc.data(), n * sizeof(double));
  }
  const unrlib::Blk res_src =
      c.unr.blk_init(self, mh, nc * n * sizeof(double), n * sizeof(double));
  for (std::size_t i = 0; i < nc; ++i) c.unr.put(self, res_src, child_res[i]);

  for (std::size_t j = 0; j < n; ++j) {
    const double want = c.oracle.allreduce_expected(ri, j);
    if (res[j] != want) {
      std::ostringstream os;
      os << "ar_tree[" << j << "] = " << res[j] << ", oracle " << want;
      c.viol(ri, self, os.str());
    }
  }
  fnv(dig, res, n * sizeof(double));
  fold_sig(r, c, ri, sig_gather, "ar_tree gather", dig);
  fold_sig(r, c, ri, sig_down, "ar_tree down", dig);
  r.barrier();
  c.unr.mem_dereg(self, mh);
}

/// MoE-style all-to-all with skewed expert routing: every rank puts a
/// deterministic, per-pair-sized payload to every other rank; pairs routed
/// to the hot expert (round.root) carry 4x the base size. One arrival
/// signal armed P-1; slots verified only after the full wait.
void run_alltoall_round(runtime::Rank& r, Ctx& c, std::size_t ri,
                        const RoundSpec& round, std::uint64_t& dig) {
  using unrlib::kNoSig;
  const int self = r.id();
  const int P = r.nranks();
  const auto sp = static_cast<std::size_t>(P);

  std::vector<std::size_t> roff(sp, 0), soff(sp, 0);
  std::size_t rtotal = 0, stotal = 0;
  for (int o = 0; o < P; ++o) {
    roff[static_cast<std::size_t>(o)] = rtotal;
    rtotal += c.oracle.moe_bytes(ri, o, self);
    soff[static_cast<std::size_t>(o)] = stotal;
    stotal += c.oracle.moe_bytes(ri, self, o);
  }
  std::vector<std::byte> rarena(std::max<std::size_t>(rtotal, 1), std::byte{0});
  std::vector<std::byte> sarena(std::max<std::size_t>(stotal, 1), std::byte{0});
  const unrlib::MemHandle rmh = c.unr.mem_reg(self, rarena.data(), rarena.size());
  const unrlib::MemHandle smh = c.unr.mem_reg(self, sarena.data(), sarena.size());
  const unrlib::SigId sig_in = c.unr.sig_init(self, P - 1, c.spec.sig_n_bits);

  std::vector<unrlib::Blk> owned(sp), needed(sp);
  std::vector<runtime::RequestPtr> pre;
  for (int o = 0; o < P; ++o) {
    if (o == self) continue;
    const auto so = static_cast<std::size_t>(o);
    owned[so] = c.unr.blk_init(self, rmh, roff[so],
                               c.oracle.moe_bytes(ri, o, self), sig_in);
    pre.push_back(r.isend(o, coll_tag(ri, 0), &owned[so], sizeof(unrlib::Blk)));
    pre.push_back(r.irecv(o, coll_tag(ri, 0), &needed[so], sizeof(unrlib::Blk)));
  }
  r.wait_all(pre);

  for (int o = 0; o < P; ++o) {
    if (o == self) continue;
    const auto so = static_cast<std::size_t>(o);
    const std::size_t len = c.oracle.moe_bytes(ri, self, o);
    const std::span<std::byte> s(sarena.data() + soff[so], len);
    Oracle::fill(s, c.oracle.moe_pattern(ri, self, o));
    const unrlib::Blk lblk = c.unr.blk_init(self, smh, soff[so], len);
    c.unr.put(self, lblk, needed[so]);
  }
  wait_sig(r, c, ri, sig_in, "alltoall arrivals");

  std::size_t bad = 0;
  for (int o = 0; o < P; ++o) {
    if (o == self) continue;
    const auto so = static_cast<std::size_t>(o);
    const std::span<const std::byte> s(rarena.data() + roff[so],
                                       c.oracle.moe_bytes(ri, o, self));
    if (!Oracle::check(s, c.oracle.moe_pattern(ri, o, self), bad)) {
      c.viol(ri, self, "alltoall slot from " + std::to_string(o) +
                           " mismatch at byte " + std::to_string(bad));
    }
    fnv(dig, s.data(), s.size());
  }
  fold_sig(r, c, ri, sig_in, "alltoall", dig);
  r.barrier();
  c.unr.mem_dereg(self, rmh);
  c.unr.mem_dereg(self, smh);
}

/// Combining fetch-and-add: an arity-d tree where each node waits for its
/// children's combined counts, then forwards its whole subtree total as that
/// many notified 0-byte PUTs — the Ultracomputer combining idiom expressed
/// through MMAS addends. Arming num_event = the exact subtree sum makes the
/// notification width itself the property under test.
void run_faa_round(runtime::Rank& r, Ctx& c, std::size_t ri,
                   const RoundSpec& round, std::uint64_t& dig) {
  using unrlib::kNoSig;
  const int self = r.id();
  const int P = r.nranks();
  const int arity = round.depth;
  const int v = Oracle::vrank_of(self, round.root, P);
  const int pv = Oracle::tree_parent(v, arity);
  const int parent = pv < 0 ? -1 : Oracle::rank_of(pv, round.root, P);
  std::vector<int> children;
  for (int k = 1; k <= arity; ++k) {
    const int cv = arity * v + k;
    if (cv < P) children.push_back(Oracle::rank_of(cv, round.root, P));
  }

  std::byte slot{};
  const unrlib::MemHandle mh = c.unr.mem_reg(self, &slot, 1);
  const std::int64_t arm = c.oracle.faa_arm(ri, self);
  const unrlib::SigId sig =
      children.empty() ? kNoSig : c.unr.sig_init(self, arm, c.spec.sig_n_bits);
  unrlib::Blk owned = c.unr.blk_init(self, mh, 0, 0, sig);
  unrlib::Blk parent_blk{};
  std::vector<runtime::RequestPtr> pre;
  for (int child : children) {
    const auto cv =
        static_cast<std::size_t>(Oracle::vrank_of(child, round.root, P));
    pre.push_back(r.isend(child, coll_tag(ri, cv), &owned, sizeof(unrlib::Blk)));
  }
  if (parent >= 0) {
    pre.push_back(r.irecv(parent, coll_tag(ri, static_cast<std::size_t>(v)),
                          &parent_blk, sizeof(unrlib::Blk)));
  }
  r.wait_all(pre);

  if (!children.empty()) wait_sig(r, c, ri, sig, "faa combine");
  const std::int64_t subtree = c.oracle.faa_subtree_total(ri, self);
  if (parent >= 0) {
    const unrlib::Blk src0 = c.unr.blk_init(self, mh, 0, 0);
    for (std::int64_t i = 0; i < subtree; ++i) c.unr.put(self, src0, parent_blk);
  }
  // Once the subtree wait clears, the combined count is committed knowledge;
  // fold the accounting every rank can derive.
  fnv_u64(dig, static_cast<std::uint64_t>(subtree));
  fnv_u64(dig, static_cast<std::uint64_t>(arm));
  if (parent < 0) fnv_u64(dig, static_cast<std::uint64_t>(c.oracle.faa_total(ri)));
  fold_sig(r, c, ri, sig, "faa", dig);
  r.barrier();
  c.unr.mem_dereg(self, mh);
}

/// Software barrier tree over signals: gather pattern payloads up an
/// arity-d tree (each parent byte-verifies every child's contribution),
/// then release payloads back down (each child verifies its parent's).
void run_barrier_tree_round(runtime::Rank& r, Ctx& c, std::size_t ri,
                            const RoundSpec& round, std::uint64_t& dig) {
  using unrlib::kNoSig;
  constexpr std::size_t kSlot = 8;
  const int self = r.id();
  const int P = r.nranks();
  const int arity = round.depth;
  const int v = Oracle::vrank_of(self, round.root, P);
  const int pv = Oracle::tree_parent(v, arity);
  const int parent = pv < 0 ? -1 : Oracle::rank_of(pv, round.root, P);
  std::vector<int> children;
  for (int k = 1; k <= arity; ++k) {
    const int cv = arity * v + k;
    if (cv < P) children.push_back(Oracle::rank_of(cv, round.root, P));
  }
  const std::size_t nc = children.size();

  // Arena bytes: [gather slots nc*8][release slot 8][up src 8][down src 8].
  std::vector<std::byte> arena((nc + 3) * kSlot, std::byte{0});
  const unrlib::MemHandle mh = c.unr.mem_reg(self, arena.data(), arena.size());
  const unrlib::SigId sig_gather =
      nc > 0 ? c.unr.sig_init(self, static_cast<std::int64_t>(nc),
                              c.spec.sig_n_bits)
             : kNoSig;
  const unrlib::SigId sig_release =
      parent >= 0 ? c.unr.sig_init(self, 1, c.spec.sig_n_bits) : kNoSig;

  std::vector<unrlib::Blk> gather_owned(nc), child_release(nc);
  unrlib::Blk release_owned{}, parent_gather{};
  std::vector<runtime::RequestPtr> pre;
  for (std::size_t i = 0; i < nc; ++i) {
    const auto cv = static_cast<std::size_t>(
        Oracle::vrank_of(children[i], round.root, P));
    gather_owned[i] = c.unr.blk_init(self, mh, i * kSlot, kSlot, sig_gather);
    pre.push_back(r.isend(children[i], coll_tag(ri, 2 * cv), &gather_owned[i],
                          sizeof(unrlib::Blk)));
    pre.push_back(r.irecv(children[i], coll_tag(ri, 2 * cv + 1),
                          &child_release[i], sizeof(unrlib::Blk)));
  }
  if (parent >= 0) {
    const auto sv = static_cast<std::size_t>(v);
    release_owned = c.unr.blk_init(self, mh, nc * kSlot, kSlot, sig_release);
    pre.push_back(r.isend(parent, coll_tag(ri, 2 * sv + 1), &release_owned,
                          sizeof(unrlib::Blk)));
    pre.push_back(r.irecv(parent, coll_tag(ri, 2 * sv), &parent_gather,
                          sizeof(unrlib::Blk)));
  }
  r.wait_all(pre);

  std::byte* up_src = arena.data() + (nc + 1) * kSlot;
  std::byte* down_src = arena.data() + (nc + 2) * kSlot;
  Oracle::fill({up_src, kSlot}, c.oracle.bt_pattern(ri, self, 0));
  std::size_t bad = 0;
  if (nc > 0) {
    wait_sig(r, c, ri, sig_gather, "barrier_tree gather");
    for (std::size_t i = 0; i < nc; ++i) {
      const std::span<const std::byte> s(arena.data() + i * kSlot, kSlot);
      if (!Oracle::check(s, c.oracle.bt_pattern(ri, children[i], 0), bad)) {
        c.viol(ri, self, "barrier_tree gather from " +
                             std::to_string(children[i]) + " mismatch at byte " +
                             std::to_string(bad));
      }
      fnv(dig, s.data(), s.size());
    }
  }
  if (parent >= 0) {
    const unrlib::Blk up_blk =
        c.unr.blk_init(self, mh, (nc + 1) * kSlot, kSlot);
    c.unr.put(self, up_blk, parent_gather);
    wait_sig(r, c, ri, sig_release, "barrier_tree release");
    const std::span<const std::byte> s(arena.data() + nc * kSlot, kSlot);
    if (!Oracle::check(s, c.oracle.bt_pattern(ri, parent, 1), bad)) {
      c.viol(ri, self, "barrier_tree release from " + std::to_string(parent) +
                           " mismatch at byte " + std::to_string(bad));
    }
    fnv(dig, s.data(), s.size());
  }
  Oracle::fill({down_src, kSlot}, c.oracle.bt_pattern(ri, self, 1));
  const unrlib::Blk down_blk =
      c.unr.blk_init(self, mh, (nc + 2) * kSlot, kSlot);
  for (std::size_t i = 0; i < nc; ++i)
    c.unr.put(self, down_blk, child_release[i]);

  fold_sig(r, c, ri, sig_gather, "barrier_tree gather", dig);
  fold_sig(r, c, ri, sig_release, "barrier_tree release", dig);
  r.barrier();
  c.unr.mem_dereg(self, mh);
}

/// Work-queue steal traffic: every rank owns `count` items and performs
/// `count` steals from the oracle's deterministic schedule — a notified GET
/// of the victim's item (reader-side signal orders the landing), then a
/// 0-byte notified PUT telling the victim it was robbed. The victim's
/// robbery signal is armed with the schedule's exact count against it.
void run_steal_round(runtime::Rank& r, Ctx& c, std::size_t ri,
                     const RoundSpec& round, std::uint64_t& dig) {
  using unrlib::kNoSig;
  const int self = r.id();
  const int P = r.nranks();
  const int k = round.count;
  const std::size_t B = round.size;
  const auto sk = static_cast<std::size_t>(k);

  // Arena: [items k*B][steal landings k*B][flag byte].
  std::vector<std::byte> arena(2 * sk * B + 1, std::byte{0});
  const unrlib::MemHandle mh = c.unr.mem_reg(self, arena.data(), arena.size());
  const std::int64_t robberies = c.oracle.steal_robberies(ri, self);
  const unrlib::SigId sig_rob =
      robberies > 0 ? c.unr.sig_init(self, robberies, c.spec.sig_n_bits)
                    : kNoSig;
  const unrlib::SigId sig_get = c.unr.sig_init(self, k, c.spec.sig_n_bits);

  for (int i = 0; i < k; ++i) {
    const std::span<std::byte> s(arena.data() + static_cast<std::size_t>(i) * B, B);
    Oracle::fill(s, c.oracle.item_pattern(ri, self, i));
  }

  // The schedule is global knowledge: as a victim, ship each thief the
  // stolen item's Blk plus the robbery-flag Blk; as a thief, collect them.
  struct BlkPair {
    unrlib::Blk item, flag;
  };
  const unrlib::Blk flag_owned = c.unr.blk_init(self, mh, 2 * sk * B, 0, sig_rob);
  std::vector<BlkPair> sent;
  // Pending isends hold pointers into `sent`: reserve the exact count so
  // push_back can never reallocate under them.
  sent.reserve(static_cast<std::size_t>(std::max<std::int64_t>(robberies, 1)));
  std::vector<BlkPair> loot(sk);
  std::vector<runtime::RequestPtr> pre;
  for (int t = 0; t < P; ++t) {
    if (t == self) continue;
    for (int j = 0; j < k; ++j) {
      if (c.oracle.steal_victim(ri, t, j) != self) continue;
      const int item = c.oracle.steal_item(ri, t, j);
      sent.push_back({c.unr.blk_init(self, mh,
                                     static_cast<std::size_t>(item) * B, B),
                      flag_owned});
      pre.push_back(r.isend(t, coll_tag(ri, static_cast<std::size_t>(t * k + j)),
                            &sent.back(), sizeof(BlkPair)));
    }
  }
  for (int j = 0; j < k; ++j) {
    pre.push_back(r.irecv(c.oracle.steal_victim(ri, self, j),
                          coll_tag(ri, static_cast<std::size_t>(self * k + j)),
                          &loot[static_cast<std::size_t>(j)], sizeof(BlkPair)));
  }
  r.wait_all(pre);

  unrlib::XferOptions xo;
  xo.use_local_blk_sig = false;
  xo.local_sig = sig_get;
  for (int j = 0; j < k; ++j) {
    const unrlib::Blk land = c.unr.blk_init(
        self, mh, (sk + static_cast<std::size_t>(j)) * B, B);
    c.unr.get(self, land, loot[static_cast<std::size_t>(j)].item, xo);
  }
  wait_sig(r, c, ri, sig_get, "steal GETs");

  std::size_t bad = 0;
  for (int j = 0; j < k; ++j) {
    const int victim = c.oracle.steal_victim(ri, self, j);
    const int item = c.oracle.steal_item(ri, self, j);
    const std::span<const std::byte> s(
        arena.data() + (sk + static_cast<std::size_t>(j)) * B, B);
    if (!Oracle::check(s, c.oracle.item_pattern(ri, victim, item), bad)) {
      c.viol(ri, self, "stolen item " + std::to_string(item) + " from " +
                           std::to_string(victim) + " mismatch at byte " +
                           std::to_string(bad));
    }
    fnv(dig, s.data(), s.size());
  }
  const unrlib::Blk src0 = c.unr.blk_init(self, mh, 2 * sk * B, 0);
  for (int j = 0; j < k; ++j)
    c.unr.put(self, src0, loot[static_cast<std::size_t>(j)].flag);
  wait_sig(r, c, ri, sig_rob, "steal robberies");

  // Wild-write detector: GETs are reads; the queue must come back intact.
  for (int i = 0; i < k; ++i) {
    const std::span<const std::byte> s(
        arena.data() + static_cast<std::size_t>(i) * B, B);
    if (!Oracle::check(s, c.oracle.item_pattern(ri, self, i), bad)) {
      c.viol(ri, self, "work-queue item " + std::to_string(i) +
                           " modified at byte " + std::to_string(bad));
    }
  }
  fold_sig(r, c, ri, sig_get, "steal get", dig);
  fold_sig(r, c, ri, sig_rob, "steal robbery", dig);
  r.barrier();
  c.unr.mem_dereg(self, mh);
}

/// Pipeline-parallel chain 0 -> 1 -> ... -> P-1: `count` micro-batches of
/// `size` bytes relay through every stage; each stage verifies and forwards
/// a micro-batch as soon as ITS arrival signal fires, and a sender may keep
/// at most `depth` micro-batches in flight (the overlap window), gated on
/// per-micro-batch local-completion signals.
void run_pipeline_round(runtime::Rank& r, Ctx& c, std::size_t ri,
                        const RoundSpec& round, std::uint64_t& dig) {
  using unrlib::kNoSig;
  const int self = r.id();
  const int P = r.nranks();
  const int M = round.count;
  const int D = round.depth;
  const std::size_t B = round.size;
  const auto sm = static_cast<std::size_t>(M);
  const bool has_prev = self > 0;
  const bool has_next = self < P - 1;

  // Arena: [recv slots M*B (if has_prev)][forward slots M*B (if has_next)].
  const std::size_t recv_base = 0;
  const std::size_t fwd_base = has_prev ? sm * B : 0;
  std::vector<std::byte> arena(
      std::max<std::size_t>((static_cast<std::size_t>(has_prev) +
                             static_cast<std::size_t>(has_next)) * sm * B, 1),
      std::byte{0});
  const unrlib::MemHandle mh = c.unr.mem_reg(self, arena.data(), arena.size());

  std::vector<unrlib::SigId> sig_in(sm, kNoSig), sig_loc(sm, kNoSig);
  for (std::size_t m = 0; m < sm; ++m) {
    if (has_prev) sig_in[m] = c.unr.sig_init(self, 1, c.spec.sig_n_bits);
    if (has_next) sig_loc[m] = c.unr.sig_init(self, 1, c.spec.sig_n_bits);
  }

  std::vector<unrlib::Blk> owned(sm), needed(sm);
  std::vector<runtime::RequestPtr> pre;
  for (std::size_t m = 0; m < sm; ++m) {
    if (has_prev) {
      owned[m] = c.unr.blk_init(self, mh, recv_base + m * B, B, sig_in[m]);
      pre.push_back(r.isend(self - 1, coll_tag(ri, m), &owned[m],
                            sizeof(unrlib::Blk)));
    }
    if (has_next) {
      pre.push_back(r.irecv(self + 1, coll_tag(ri, m), &needed[m],
                            sizeof(unrlib::Blk)));
    }
  }
  r.wait_all(pre);

  std::size_t bad = 0;
  for (int m = 0; m < M; ++m) {
    const auto im = static_cast<std::size_t>(m);
    if (has_prev) {
      wait_sig(r, c, ri, sig_in[im], "pipeline arrival");
      const std::span<const std::byte> s(arena.data() + recv_base + im * B, B);
      if (!Oracle::check(s, c.oracle.pipe_pattern(ri, m), bad)) {
        c.viol(ri, self, "pipeline micro-batch " + std::to_string(m) +
                             " mismatch at byte " + std::to_string(bad));
      }
      fnv(dig, s.data(), s.size());
    }
    if (has_next) {
      if (m >= D) wait_sig(r, c, ri, sig_loc[im - static_cast<std::size_t>(D)],
                           "pipeline overlap window");
      const std::span<std::byte> f(arena.data() + fwd_base + im * B, B);
      if (has_prev) {
        std::memcpy(f.data(), arena.data() + recv_base + im * B, B);
      } else {
        Oracle::fill(f, c.oracle.pipe_pattern(ri, m));
      }
      unrlib::XferOptions xo;
      xo.use_local_blk_sig = false;
      xo.local_sig = sig_loc[im];
      const unrlib::Blk lblk = c.unr.blk_init(self, mh, fwd_base + im * B, B);
      c.unr.put(self, lblk, needed[im], xo);
    }
  }
  if (has_next) {
    for (std::size_t m = 0; m < sm; ++m)
      wait_sig(r, c, ri, sig_loc[m], "pipeline drain");
  }
  for (std::size_t m = 0; m < sm; ++m) {
    fold_sig(r, c, ri, sig_in[m], "pipeline arrival", dig);
    fold_sig(r, c, ri, sig_loc[m], "pipeline local", dig);
  }
  r.barrier();
  c.unr.mem_dereg(self, mh);
}

void run_rank(runtime::Rank& r, Ctx& c) {
  const int self = r.id();
  const int P = r.nranks();
  auto& mine = c.region[static_cast<std::size_t>(self)];
  unrlib::MemHandle mh = c.unr.mem_reg(self, mine.data(), mine.size());

  // Persistent structures any round might need (collective construction).
  std::vector<std::byte> expose;
  std::shared_ptr<runtime::Window> win;
  if (c.window_needed) {
    expose.assign(static_cast<std::size_t>(P) * c.max_wslot, std::byte{0});
    win = runtime::Window::create(r.comm(), self, expose.data(), expose.size());
  }
  std::optional<unrlib::RmaBarrier> rbar;
  if (c.rma_barrier_needed) rbar.emplace(c.unr, r);

  for (std::size_t ri = 0; ri < c.spec.rounds.size(); ++ri) {
    const RoundSpec& round = c.spec.rounds[ri];
    std::uint64_t& dig = c.digests[ri][static_cast<std::size_t>(self)];
    std::size_t bad = 0;
    switch (round.kind) {
      case RoundSpec::Kind::kXfer:
        run_xfer_round(r, c, ri, round, mh, dig);
        break;
      case RoundSpec::Kind::kBarrier:
        r.barrier();
        break;
      case RoundSpec::Kind::kRmaBarrier:
        rbar->run();
        break;
      case RoundSpec::Kind::kBcast: {
        std::vector<std::byte> buf(round.size);
        const std::uint64_t pat = c.oracle.coll_pattern(ri, round.root);
        if (self == round.root) Oracle::fill(buf, pat);
        r.bcast(round.root, buf.data(), buf.size());
        if (!Oracle::check(buf, pat, bad)) {
          c.viol(ri, self,
                 "bcast payload mismatch at byte " + std::to_string(bad));
        }
        fnv(dig, buf.data(), buf.size());
        break;
      }
      case RoundSpec::Kind::kAllgather: {
        std::vector<std::byte> one(round.size);
        std::vector<std::byte> all(static_cast<std::size_t>(P) * round.size);
        Oracle::fill(one, c.oracle.coll_pattern(ri, self));
        r.allgather(one.data(), all.data(), round.size);
        for (int o = 0; o < P; ++o) {
          const std::span<const std::byte> s(
              all.data() + static_cast<std::size_t>(o) * round.size,
              round.size);
          if (!Oracle::check(s, c.oracle.coll_pattern(ri, o), bad)) {
            c.viol(ri, self, "allgather slot " + std::to_string(o) +
                                 " mismatch at byte " + std::to_string(bad));
          }
        }
        fnv(dig, all.data(), all.size());
        break;
      }
      case RoundSpec::Kind::kAllreduce: {
        std::vector<double> v(round.size);
        for (std::size_t j = 0; j < v.size(); ++j) {
          v[j] = c.oracle.allreduce_contrib(ri, self, j);
        }
        r.allreduce_sum(v.data(), v.size());
        for (std::size_t j = 0; j < v.size(); ++j) {
          const double want = c.oracle.allreduce_expected(ri, j);
          if (v[j] != want) {
            std::ostringstream os;
            os << "allreduce[" << j << "] = " << v[j] << ", oracle " << want;
            c.viol(ri, self, os.str());
          }
        }
        fnv(dig, v.data(), v.size() * sizeof(double));
        break;
      }
      case RoundSpec::Kind::kWindow: {
        // Shifted ring: each origin puts into slot 0 of exactly one target,
        // so epochs can reuse the exposure buffer (fences order them).
        const std::size_t slot = round.size;
        const int target = (self + round.root) % P;
        const int origin = (self - round.root + P) % P;
        std::vector<std::byte> src(slot);
        Oracle::fill(src, c.oracle.window_pattern(ri, self));
        win->fence(self);
        win->put(self, target, 0, src.data(), slot);
        win->fence(self);
        // Safe to read before the next epoch: its opening fence cannot
        // complete without this rank's participation.
        const std::span<const std::byte> got(expose.data(), slot);
        if (!Oracle::check(got, c.oracle.window_pattern(ri, origin), bad)) {
          c.viol(ri, self, "window epoch: data from origin " +
                               std::to_string(origin) + " mismatch at byte " +
                               std::to_string(bad));
        }
        fnv(dig, got.data(), got.size());
        break;
      }
      case RoundSpec::Kind::kAllreduceRing:
        run_ar_ring_round(r, c, ri, round, dig);
        break;
      case RoundSpec::Kind::kAllreduceTree:
        run_ar_tree_round(r, c, ri, round, dig);
        break;
      case RoundSpec::Kind::kAlltoall:
        run_alltoall_round(r, c, ri, round, dig);
        break;
      case RoundSpec::Kind::kFaaCombine:
        run_faa_round(r, c, ri, round, dig);
        break;
      case RoundSpec::Kind::kBarrierTree:
        run_barrier_tree_round(r, c, ri, round, dig);
        break;
      case RoundSpec::Kind::kSteal:
        run_steal_round(r, c, ri, round, dig);
        break;
      case RoundSpec::Kind::kPipeline:
        run_pipeline_round(r, c, ri, round, dig);
        break;
    }
  }

  // Drain: unverifiable fire-and-forget tails (non-notified ops, companion
  // messages, rendezvous acks) must land before the pool-conservation
  // checks read the teardown state.
  r.barrier();
  r.kernel().sleep_for(2 * kMs);
  r.barrier();
}

}  // namespace

std::string validate(const WorkloadSpec& spec) {
  const auto err = [](const std::string& m) { return m; };
  if (spec.nodes < 1 || spec.ranks_per_node < 1) return err("bad topology");
  const int P = spec.nranks();
  if (P < 2) return err("need at least 2 ranks");
  if (P > 256) return err("more than 256 ranks");
  if (spec.nics < 1 || spec.nics > 64) return err("bad NIC count");
  if (spec.nic_death && spec.nics < 2) return err("nic_death needs >= 2 NICs");
  if (spec.sig_n_bits < 1 || spec.sig_n_bits > 61) return err("sig_n_bits out of [1, 61]");
  if (spec.region_bytes == 0 || spec.region_bytes > 64 * MiB) return err("bad region size");
  if (spec.rounds.size() > 4096) return err("more than 4096 rounds");
  Oracle oracle(spec);
  // Signal-width capacity: every armed num_event must fit the event field.
  const std::int64_t cap = std::int64_t{1}
                           << (spec.sig_n_bits < 62 ? spec.sig_n_bits : 61);
  for (std::size_t ri = 0; ri < spec.rounds.size(); ++ri) {
    const RoundSpec& round = spec.rounds[ri];
    const auto rerr = [&](const std::string& m) {
      return "round " + std::to_string(ri) + ": " + m;
    };
    if (round.stray_sig_rank < -1 || round.stray_sig_rank >= P) {
      return rerr("stray_sig_rank out of range");
    }
    switch (round.kind) {
      case RoundSpec::Kind::kXfer: {
        if (round.ops.size() > 256) return rerr("more than 256 ops");
        for (std::size_t i = 0; i < round.ops.size(); ++i) {
          const OpSpec& op = round.ops[i];
          const auto oerr = [&](const std::string& m) {
            return rerr("op " + std::to_string(i) + ": " + m);
          };
          if (op.a < 0 || op.a >= P || op.b < 0 || op.b >= P) {
            return oerr("rank out of range");
          }
          if (op.a == op.b) return oerr("self-targeted op");
          if (op.kind == OpSpec::Kind::kSend) {
            if (op.size > 16 * MiB) return oerr("send too large");
          } else {
            if (op.src_off + op.size > spec.region_bytes ||
                op.dst_off + op.size > spec.region_bytes) {
              return oerr("slot outside the registered region");
            }
            if (op.force_split < 0 || op.force_split > 64) {
              return oerr("bad force_split");
            }
            if (op.nic < -1 || op.nic >= spec.nics) return oerr("bad nic pin");
          }
        }
        // Signal capacity: the armed counts must fit the event field.
        for (int rank = 0; rank < P; ++rank) {
          const Oracle::Events ev = oracle.expected_events(ri, rank);
          if (ev.arrivals >= cap || ev.locals >= cap) {
            return rerr("expected events overflow sig_n_bits");
          }
        }
        break;
      }
      case RoundSpec::Kind::kBarrier:
      case RoundSpec::Kind::kRmaBarrier:
        break;
      case RoundSpec::Kind::kBcast:
        if (round.root < 0 || round.root >= P) return rerr("bcast root out of range");
        if (round.size < 1 || round.size > 16 * MiB) return rerr("bad bcast size");
        break;
      case RoundSpec::Kind::kAllgather:
        if (round.size < 1 || round.size > 1 * MiB) return rerr("bad allgather size");
        break;
      case RoundSpec::Kind::kAllreduce:
        if (round.size < 1 || round.size > 64 * KiB) return rerr("bad allreduce count");
        break;
      case RoundSpec::Kind::kWindow:
        if (round.root < 1 || round.root >= P) return rerr("window shift out of [1, P)");
        if (round.size < 1 || round.size > 64 * KiB) return rerr("bad window slot size");
        break;
      case RoundSpec::Kind::kAllreduceRing:
        if (round.size < 1 || round.size > 4096) return rerr("bad ar_ring count");
        break;
      case RoundSpec::Kind::kAllreduceTree:
        if (round.root < 0 || round.root >= P) return rerr("ar_tree root out of range");
        if (round.size < 1 || round.size > 4096) return rerr("bad ar_tree count");
        if (cap <= 2) return rerr("sig_n_bits too narrow for ar_tree gather");
        break;
      case RoundSpec::Kind::kAlltoall:
        if (round.root < 0 || round.root >= P) return rerr("alltoall hot rank out of range");
        if (round.size < 1 || round.size > 4096) return rerr("bad alltoall base size");
        if (P - 1 >= cap) return rerr("alltoall arrivals overflow sig_n_bits");
        break;
      case RoundSpec::Kind::kFaaCombine: {
        if (round.root < 0 || round.root >= P) return rerr("faa root out of range");
        if (round.depth < 2 || round.depth > 8) return rerr("faa arity out of [2, 8]");
        if (round.count < 1 || round.count > 64) return rerr("faa addend cap out of [1, 64]");
        if (oracle.faa_total(ri) > 4096) return rerr("faa grand total too large");
        for (int rank = 0; rank < P; ++rank) {
          if (oracle.faa_arm(ri, rank) >= cap) {
            return rerr("faa combined count overflows sig_n_bits");
          }
        }
        break;
      }
      case RoundSpec::Kind::kBarrierTree:
        if (round.root < 0 || round.root >= P) return rerr("barrier_tree root out of range");
        if (round.depth < 2 || round.depth > 8) return rerr("barrier_tree arity out of [2, 8]");
        if (round.depth >= cap) return rerr("barrier_tree fan-in overflows sig_n_bits");
        break;
      case RoundSpec::Kind::kSteal:
        if (round.size < 1 || round.size > 4096) return rerr("bad steal item size");
        if (round.count < 1 || round.count > 16) return rerr("steal count out of [1, 16]");
        if (P * round.count > 4096) return rerr("too many steal events");
        if (round.count >= cap) return rerr("steal GET count overflows sig_n_bits");
        for (int rank = 0; rank < P; ++rank) {
          if (oracle.steal_robberies(ri, rank) >= cap) {
            return rerr("steal robberies overflow sig_n_bits");
          }
        }
        break;
      case RoundSpec::Kind::kPipeline:
        if (round.size < 1 || round.size > 64 * KiB) return rerr("bad pipeline micro-batch size");
        if (round.count < 1 || round.count > 64) return rerr("pipeline micro-batches out of [1, 64]");
        if (round.depth < 1 || round.depth > 32) return rerr("pipeline overlap depth out of [1, 32]");
        break;
    }
  }
  return "";
}

RunResult run_workload(const WorkloadSpec& spec, const RunOptions& opt) {
  RunResult out;
  if (const std::string verr = validate(spec); !verr.empty()) {
    out.violations.push_back("invalid spec: " + verr);
    return out;
  }

  // Fault runs exercise warn paths on purpose; keep the console quiet but
  // let genuine errors through.
  const LogLevel prev_level = log_level();
  set_log_level(LogLevel::kError);

  const int P = spec.nranks();
  const std::size_t R = spec.rounds.size();
  const Oracle oracle(spec);
  std::vector<std::string> violations;
  std::vector<std::vector<std::byte>> region(static_cast<std::size_t>(P));
  for (auto& v : region) v.assign(spec.region_bytes, std::byte{0});
  std::vector<std::vector<std::uint64_t>> digests(
      R, std::vector<std::uint64_t>(static_cast<std::size_t>(P), kFnvBasis));

  {
    runtime::World::Config wc;
    wc.nodes = spec.nodes;
    wc.ranks_per_node = spec.ranks_per_node;
    wc.profile = system_profile(spec.profile);
    wc.profile.iface = spec.iface;
    wc.profile.nics_per_node = spec.nics;
    wc.seed = spec.seed;
    if (spec.faults) {
      wc.faults.drop_rate = 0.02;
      wc.faults.delay_rate = 0.05;
      wc.faults.delay_max = 5 * kUs;
      if (spec.nic_death) {
        wc.faults.nic_faults.push_back({spec.nodes - 1, spec.nics - 1, 40 * kUs});
      }
    }
    wc.shards = opt.shards;
    if (opt.trace_out) {
      wc.telemetry.trace.enabled = true;
      wc.telemetry.trace.ring_capacity = opt.trace_ring;
    }
    runtime::World w(wc);

    unrlib::Unr::Config uc;
    uc.channel = opt.channel;
    uc.split_threshold = spec.split_threshold;
    uc.shm_intra_node = spec.shm_intra_node;
    uc.enable_hw_offload = opt.channel == unrlib::ChannelKind::kLevel4;
    unrlib::Unr unr(w, uc);

    Ctx ctx{spec, opt, oracle, unr, region, digests, violations};
    for (const RoundSpec& round : spec.rounds) {
      if (round.kind == RoundSpec::Kind::kWindow) {
        ctx.window_needed = true;
        if (round.size > ctx.max_wslot) ctx.max_wslot = round.size;
      }
      if (round.kind == RoundSpec::Kind::kRmaBarrier) {
        ctx.rma_barrier_needed = true;
      }
    }

    try {
      w.run([&ctx](runtime::Rank& r) { run_rank(r, ctx); });
    } catch (const std::exception& e) {
      // Fail-loud invariants (UNR_CHECK in the kernel/fabric/signals) and
      // deadlock detection surface here.
      violations.push_back(std::string("run aborted: ") + e.what());
    }

    if (opt.check_invariants) {
      const sim::Kernel::PoolDebug kp = w.kernel().pool_debug();
      if (kp.leaked() != 0) {
        std::ostringstream os;
        os << "EventNode pool leak: total=" << kp.total << " free=" << kp.free
           << " pending=" << kp.pending;
        violations.push_back(os.str());
      }
      // Coroutine-frame conservation: every actor fiber must have completed
      // and returned its stack to the pool by the time run() exits — on the
      // abort path too. A live stack here is a fiber the scheduler lost.
      if (kp.live_stacks() != 0) {
        std::ostringstream os;
        os << "fiber stack leak: " << kp.live_stacks() << " of "
           << kp.stacks_total << " coroutine frame(s) never released";
        violations.push_back(os.str());
      }
      const fabric::Fabric::PoolDebug fp = w.fabric().pool_debug();
      if (fp.live_flights() != 0) {
        violations.push_back("fragment conservation: " +
                             std::to_string(fp.live_flights()) +
                             " Flight(s) never released");
      }
      if (fp.live_am_flights() != 0) {
        violations.push_back("fragment conservation: " +
                             std::to_string(fp.live_am_flights()) +
                             " AmFlight(s) never released");
      }
    }

    out.events = w.kernel().event_count();
    out.end_time = w.elapsed();

    // In-memory telemetry capture (the service's streaming path) — read
    // before the World tears the kernel down.
    if (opt.trace_out) {
      std::ostringstream ts;
      w.kernel().telemetry().tracer().write_json(ts);
      *opt.trace_out = ts.str();
    }
    if (opt.metrics_out) {
      std::ostringstream ms;
      w.kernel().telemetry().registry().write_json(ms);
      *opt.metrics_out = ms.str();
    }
  }

  set_log_level(prev_level);

  // Fold per-(round, rank) digests in a fixed order; timing never enters.
  std::uint64_t d = kFnvBasis;
  fnv_u64(d, static_cast<std::uint64_t>(P));
  fnv_u64(d, static_cast<std::uint64_t>(R));
  for (const auto& per_rank : digests) {
    for (const std::uint64_t v : per_rank) fnv_u64(d, v);
  }
  out.digest = d;
  out.violations = std::move(violations);
  out.ok = out.violations.empty();
  return out;
}

std::span<const unrlib::ChannelKind> differential_channels() {
  static constexpr unrlib::ChannelKind kDiff[] = {
      unrlib::ChannelKind::kNative,
      unrlib::ChannelKind::kLevel0,
      unrlib::ChannelKind::kMpiFallback,
  };
  return kDiff;
}

const char* channel_token(unrlib::ChannelKind k) {
  switch (k) {
    case unrlib::ChannelKind::kAuto: return "auto";
    case unrlib::ChannelKind::kNative: return "native";
    case unrlib::ChannelKind::kLevel0: return "level0";
    case unrlib::ChannelKind::kLevel4: return "level4";
    case unrlib::ChannelKind::kMpiFallback: return "fallback";
  }
  return "?";
}

bool channel_from_token(const std::string& s, unrlib::ChannelKind& out) {
  if (s == "auto") out = unrlib::ChannelKind::kAuto;
  else if (s == "native") out = unrlib::ChannelKind::kNative;
  else if (s == "level0") out = unrlib::ChannelKind::kLevel0;
  else if (s == "level4") out = unrlib::ChannelKind::kLevel4;
  else if (s == "fallback") out = unrlib::ChannelKind::kMpiFallback;
  else return false;
  return true;
}

DiffResult run_differential(const WorkloadSpec& spec,
                            std::span<const unrlib::ChannelKind> channels,
                            const RunOptions& base) {
  DiffResult out;
  for (const unrlib::ChannelKind ch : channels) {
    RunOptions o = base;
    o.channel = ch;
    RunResult r = run_workload(spec, o);
    for (const std::string& v : r.violations) {
      out.violations.push_back(std::string(channel_token(ch)) + ": " + v);
    }
    out.runs.emplace_back(ch, std::move(r));
  }
  // Application-visible results must not depend on the notification
  // transport: compare every digest against the first channel's.
  for (std::size_t i = 1; i < out.runs.size(); ++i) {
    if (out.runs[i].second.digest != out.runs[0].second.digest) {
      std::ostringstream os;
      os << "digest mismatch: " << channel_token(out.runs[0].first) << "=0x"
         << std::hex << out.runs[0].second.digest << " vs "
         << channel_token(out.runs[i].first) << "=0x"
         << out.runs[i].second.digest;
      out.violations.push_back(os.str());
    }
  }
  out.ok = out.violations.empty();
  return out;
}

}  // namespace unr::check
