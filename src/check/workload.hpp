// Property-based fuzzing: the workload model.
//
// A Workload is an EXPLICIT list of rounds and operations — not just a seed.
// The generator expands a seed into this list once; the runner executes the
// list; the shrinker edits the list. Keeping the structure explicit is what
// makes delta-debugging possible: removing op 3 of round 2 does not reshuffle
// the RNG stream of everything after it, so a failure localized to one op
// stays reproducible while the rest of the workload melts away.
//
// Round protocol (the shape the runner executes; see runner.cpp):
//   * every op has DEDICATED source/destination offsets in a per-rank region,
//     assigned once by the generator and never reused — rounds cannot
//     interfere through the buffers, so the byte-level oracle is exact;
//   * each rank creates at most two fresh signals per xfer round (arrivals +
//     local completions) with num_event equal to the oracle's expected count,
//     so "counter == 0 after the waits" is the MMAS accounting invariant;
//   * rounds end with a barrier, which orders every notified landing before
//     the verification that reads it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/profile.hpp"
#include "common/units.hpp"

namespace unr::check {

/// One RMA or two-sided operation inside an xfer round.
struct OpSpec {
  enum class Kind : int {
    kPut = 0,   ///< notified RMA PUT a -> b
    kGet = 1,   ///< notified RMA GET: a reads from b
    kSend = 2,  ///< two-sided message a -> b (tag-matched, eager/rendezvous)
  };
  Kind kind = Kind::kPut;
  int a = 0;  ///< issuing rank (PUT/send: source of the data; GET: the reader)
  int b = 0;  ///< peer rank (PUT/send: receiver; GET: owner of the data)
  std::uint64_t size = 0;
  std::uint64_t src_off = 0;  ///< data-source offset (PUT: at a; GET: at b)
  std::uint64_t dst_off = 0;  ///< landing offset (PUT: at b; GET: at a)
  int force_split = 0;        ///< 0 = scheduler decides
  int nic = -1;               ///< -1 = scheduler decides
  bool remote_notify = true;  ///< bind the landing side's round signal
  bool local_notify = true;   ///< bind the issuer's local-completion signal
  std::uint64_t pattern = 1;  ///< payload pattern id (never 0)
  /// Mutation hook: flip one byte of the TRANSMITTED data only (the oracle
  /// keeps the unflipped expectation). Used by the harness's self-test: a
  /// corrupted payload must be caught and shrunk.
  bool corrupt = false;

  bool operator==(const OpSpec&) const = default;
};

/// One synchronization epoch of the workload.
struct RoundSpec {
  enum class Kind : int {
    kXfer = 0,        ///< a batch of OpSpecs + signal waits
    kBarrier = 1,     ///< two-sided dissemination barrier
    kRmaBarrier = 2,  ///< unrlib::RmaBarrier (notified-PUT dissemination)
    kBcast = 3,       ///< runtime broadcast, `size` bytes from `root`
    kAllgather = 4,   ///< runtime allgather, `size` bytes per rank
    kAllreduce = 5,   ///< runtime allreduce_sum over `size` doubles
    kWindow = 6,      ///< MPI-RMA window epoch: fence, puts, fence, verify
    // --- AI-training / scalable-synchronization traffic (scenario pack) ---
    kAllreduceRing = 7,  ///< chunked ring allreduce over notified PUTs (`size` doubles)
    kAllreduceTree = 8,  ///< binary-tree reduce+bcast over notified PUTs (`size` doubles)
    kAlltoall = 9,       ///< MoE all-to-all; `size` base bytes, `root` = hot expert
    kFaaCombine = 10,    ///< combining fetch-and-add tree; `count` max addend, `depth` arity
    kBarrierTree = 11,   ///< software barrier tree over signals; `depth` arity
    kSteal = 12,         ///< work-queue steal: GET items + notify victim; `size`/`count`
    kPipeline = 13,      ///< pipeline-parallel chain; `size` µbatch, `count` µbatches, `depth` overlap
  };
  Kind kind = Kind::kXfer;
  std::vector<OpSpec> ops;  ///< kXfer only
  int root = 0;             ///< kBcast/tree kinds: root; kWindow: target shift;
                            ///< kAlltoall: the hot (over-routed) expert rank
  std::uint64_t size = 0;   ///< collective payload (bytes / doubles / slot bytes)
  int count = 0;  ///< kFaaCombine: max per-rank addend; kSteal: items & steals
                  ///< per rank; kPipeline: micro-batches
  int depth = 0;  ///< tree arity (kFaaCombine/kBarrierTree) or overlap window
                  ///< (kPipeline: in-flight micro-batch cap per sender)
  /// Mutation hook: this rank applies one stray addend to its arrival signal
  /// after the waits — the oracle's counter==0 check must catch it.
  int stray_sig_rank = -1;

  bool operator==(const RoundSpec&) const = default;
};

/// A complete self-checking workload: configuration + rounds.
struct WorkloadSpec {
  std::uint64_t seed = 1;           ///< seeds routing jitter + fault injection
  std::string profile = "TH-XY";    ///< base cost model (system_profile name)
  Interface iface = Interface::kGlex;
  int nodes = 2;
  int ranks_per_node = 1;
  int nics = 2;
  int sig_n_bits = 8;               ///< MMAS event-field width for round signals
  std::uint64_t split_threshold = 16 * KiB;
  bool shm_intra_node = false;
  bool faults = false;              ///< PR-1 injector: drops + delays (+ NIC death)
  bool nic_death = false;           ///< kill one NIC mid-run (needs nics >= 2)
  std::uint64_t region_bytes = 64;  ///< per-rank registered region size
  std::vector<RoundSpec> rounds;

  int nranks() const { return nodes * ranks_per_node; }

  bool operator==(const WorkloadSpec&) const = default;
};

/// Knobs for the seed -> WorkloadSpec expansion.
struct GenConfig {
  /// Which round-kind palette the generator draws from. kClassic is the
  /// original mix and is BYTE-IDENTICAL per seed to the pre-scenario-pack
  /// generator (the golden determinism pins depend on that); kAiSync adds
  /// the distributed-AI and scalable-synchronization kinds to the palette.
  enum class Mix { kClassic, kAiSync };
  Interface iface = Interface::kGlex;
  bool faults = false;
  int min_rounds = 3;
  int max_rounds = 8;
  int max_ops_per_round = 6;
  Mix mix = Mix::kClassic;
};

/// Deterministically expand a seed into an explicit workload.
WorkloadSpec generate(std::uint64_t seed, const GenConfig& gc);

/// Intentional-bug injection for the harness's self-test (mutation check).
enum class Mutation { kNone, kCorruptPayload, kStraySignal };
/// Plant `m` somewhere the oracle is guaranteed to look (a verifiable op of
/// size >= 1 / an xfer round with arrival events). Returns false when the
/// workload has no eligible site.
bool inject_mutation(WorkloadSpec& spec, Mutation m, std::uint64_t seed);

/// Total op count across all rounds (shrink-quality metric).
std::size_t total_ops(const WorkloadSpec& spec);

// --- Text round-trip (repro files; tools/fuzz_triage.py pretty-prints it) ---
// Format v2 ("unrfuzz v2") is the STABLE embeddable form referenced by
// svc::RunSpec: identical body grammar to v1, revved so a RunSpec can name
// the exact sub-format it embeds. to_text emits v2; from_text accepts both
// headers (old v1 repro files keep replaying).
inline constexpr const char* kWorkloadFormat = "unrfuzz v2";
std::string to_text(const WorkloadSpec& spec);
bool from_text(const std::string& text, WorkloadSpec& out, std::string* error);

const char* op_kind_name(OpSpec::Kind k);
const char* round_kind_name(RoundSpec::Kind k);
/// Lower-case interface token ("glex", "verbs", ...); from_token returns
/// false on an unknown name.
const char* iface_token(Interface i);
bool iface_from_token(const std::string& s, Interface& out);

}  // namespace unr::check
