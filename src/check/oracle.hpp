// Reference oracle: the plain-C++ model of what a workload MUST produce.
//
// Everything here is computed without touching the simulator: payload bytes
// are a pure function of (pattern id, byte index); signal expectations follow
// the MMAS accounting identity — every operation nets exactly -1 on each
// bound signal regardless of how many fragments it was split into (the lead
// addend's +(K-1) sub-message field cancels against K-1 followers) — so a
// round signal created with num_event = <expected ops> must read exactly 0
// after the waits; collective results are modeled with exact-in-double
// integer arithmetic so any reduction order gives bit-identical sums.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "check/workload.hpp"

namespace unr::check {

class Oracle {
 public:
  explicit Oracle(const WorkloadSpec& spec) : spec_(spec) {}

  // --- Payload model ---
  static std::byte pattern_byte(std::uint64_t pattern, std::uint64_t i);
  static void fill(std::span<std::byte> buf, std::uint64_t pattern);
  /// True when buf matches the pattern; on mismatch `bad_index` is the first
  /// differing byte.
  static bool check(std::span<const std::byte> buf, std::uint64_t pattern,
                    std::size_t& bad_index);

  // --- Signal model (MMAS accounting) ---
  struct Events {
    std::int64_t arrivals = 0;  ///< notified landings at this rank
    std::int64_t locals = 0;    ///< local completions owed to this rank
  };
  /// Expected notification counts for `rank` in xfer round `round`; both
  /// round signals are created with exactly these num_event values, so the
  /// triggered counter must be exactly 0 (±anything = lost/duplicated/stray
  /// notification or a broken addend).
  Events expected_events(std::size_t round, int rank) const;

  /// Can this op's landing be ordered before the round-closing barrier on
  /// EVERY channel level? (send: recv completion; PUT: the receiver's
  /// arrival signal; GET: the reader's local signal.) Other ops are
  /// fire-and-forget from the verifier's point of view and are excluded
  /// from byte verification and from the digest — the set must be the same
  /// across channels or differential digests could not match.
  static bool verifiable(const OpSpec& op);

  // --- Collective model ---
  /// Pattern id of `rank`'s contribution to collective round `round`.
  std::uint64_t coll_pattern(std::size_t round, int rank) const;
  /// rank's j-th allreduce contribution: small exact-in-double integers, so
  /// the reduction result is order-independent and bit-checkable.
  double allreduce_contrib(std::size_t round, int rank, std::size_t j) const;
  double allreduce_expected(std::size_t round, std::size_t j) const;

  // --- Window model ---
  /// Pattern id of origin's put into window round `round`.
  std::uint64_t window_pattern(std::size_t round, int origin) const;

 private:
  const WorkloadSpec& spec_;
};

}  // namespace unr::check
