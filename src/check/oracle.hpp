// Reference oracle: the plain-C++ model of what a workload MUST produce.
//
// Everything here is computed without touching the simulator: payload bytes
// are a pure function of (pattern id, byte index); signal expectations follow
// the MMAS accounting identity — every operation nets exactly -1 on each
// bound signal regardless of how many fragments it was split into (the lead
// addend's +(K-1) sub-message field cancels against K-1 followers) — so a
// round signal created with num_event = <expected ops> must read exactly 0
// after the waits; collective results are modeled with exact-in-double
// integer arithmetic so any reduction order gives bit-identical sums.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "check/workload.hpp"

namespace unr::check {

class Oracle {
 public:
  explicit Oracle(const WorkloadSpec& spec) : spec_(spec) {}

  // --- Payload model ---
  static std::byte pattern_byte(std::uint64_t pattern, std::uint64_t i);
  static void fill(std::span<std::byte> buf, std::uint64_t pattern);
  /// True when buf matches the pattern; on mismatch `bad_index` is the first
  /// differing byte.
  static bool check(std::span<const std::byte> buf, std::uint64_t pattern,
                    std::size_t& bad_index);

  // --- Signal model (MMAS accounting) ---
  struct Events {
    std::int64_t arrivals = 0;  ///< notified landings at this rank
    std::int64_t locals = 0;    ///< local completions owed to this rank
  };
  /// Expected notification counts for `rank` in xfer round `round`; both
  /// round signals are created with exactly these num_event values, so the
  /// triggered counter must be exactly 0 (±anything = lost/duplicated/stray
  /// notification or a broken addend).
  Events expected_events(std::size_t round, int rank) const;

  /// Can this op's landing be ordered before the round-closing barrier on
  /// EVERY channel level? (send: recv completion; PUT: the receiver's
  /// arrival signal; GET: the reader's local signal.) Other ops are
  /// fire-and-forget from the verifier's point of view and are excluded
  /// from byte verification and from the digest — the set must be the same
  /// across channels or differential digests could not match.
  static bool verifiable(const OpSpec& op);

  // --- Collective model ---
  /// Pattern id of `rank`'s contribution to collective round `round`.
  std::uint64_t coll_pattern(std::size_t round, int rank) const;
  /// rank's j-th allreduce contribution: small exact-in-double integers, so
  /// the reduction result is order-independent and bit-checkable.
  double allreduce_contrib(std::size_t round, int rank, std::size_t j) const;
  double allreduce_expected(std::size_t round, std::size_t j) const;

  // --- Window model ---
  /// Pattern id of origin's put into window round `round`.
  std::uint64_t window_pattern(std::size_t round, int origin) const;

  // --- AI-training / scalable-sync traffic (scenario-pack round kinds) ---
  // Tree shape shared by kAllreduceTree / kFaaCombine / kBarrierTree: an
  // arity-d heap layout over VIRTUAL ranks (ranks rotated so `root` sits at
  // vrank 0). Pure functions of the spec, shared by oracle and runner so the
  // expectation and the execution can never disagree about the topology.
  static int vrank_of(int rank, int root, int nranks);
  static int rank_of(int vrank, int root, int nranks);
  static int tree_parent(int vrank, int arity);  ///< -1 for the root
  static int tree_child_count(int vrank, int arity, int nranks);

  /// MoE all-to-all: deterministic per-pair payload size. Pairs routed to
  /// the hot expert (`round.root`) carry 4x the base `size`; everyone else
  /// gets base plus a per-pair jitter in [0, size/2]. Self-pairs are 0.
  std::uint64_t moe_bytes(std::size_t round, int src, int dst) const;
  /// Pattern id of src's payload to dst in all-to-all round `round`.
  std::uint64_t moe_pattern(std::size_t round, int src, int dst) const;

  /// Combining fetch-and-add: rank's addend, in [1, round.count].
  std::int64_t faa_contrib(std::size_t round, int rank) const;
  /// Sum of `rank`'s own addend plus all of its tree descendants' — the
  /// combined value the rank forwards up as that many notified 0-byte PUTs.
  std::int64_t faa_subtree_total(std::size_t round, int rank) const;
  /// num_event the rank arms its combining signal with: the sum of its
  /// children's subtree totals (0 for leaves — no signal needed).
  std::int64_t faa_arm(std::size_t round, int rank) const;
  /// The grand total every rank can derive once the root's wait clears.
  std::int64_t faa_total(std::size_t round) const;

  /// Work stealing: the deterministic steal schedule. Thief `thief` performs
  /// round.count steals; its j-th targets victim steal_victim(...) != thief,
  /// item index steal_item(...) in [0, round.count).
  int steal_victim(std::size_t round, int thief, int j) const;
  int steal_item(std::size_t round, int thief, int j) const;
  /// How many steals target `victim` — its robbery signal's num_event.
  std::int64_t steal_robberies(std::size_t round, int victim) const;
  /// Pattern id of item `item` in victim's work queue.
  std::uint64_t item_pattern(std::size_t round, int victim, int item) const;

  /// Pattern id of pipeline micro-batch `mb` (same bytes at every stage).
  std::uint64_t pipe_pattern(std::size_t round, int mb) const;

  /// Barrier-tree payload pattern: phase 0 = the gather (child -> parent)
  /// payload of `rank`, phase 1 = the release (parent -> children) payload.
  std::uint64_t bt_pattern(std::size_t round, int rank, int phase) const;

 private:
  const WorkloadSpec& spec_;
};

}  // namespace unr::check
