// Property-based fuzzing: the execution + checking engine.
//
// run_workload() builds a World + Unr for the spec, executes every round of
// the workload, and checks each completed operation against the reference
// oracle (byte-accurate payloads, MMAS counter accounting, collective sums,
// window epochs). Violations never abort the run — they accumulate into
// RunResult::violations so the shrinker can use "still fails" as its
// predicate even for workloads that trip several checks at once.
//
// Checked invariants (beyond per-op payload/counter checks):
//   * signal counters read exactly 0 after the round's waits (MMAS identity);
//   * source buffers are unchanged after the round (no wild writes);
//   * Signal overflow warnings are zero (no early/duplicated notification);
//   * at teardown the fabric's Flight/AmFlight pools and the kernel's
//     EventNode pool balance (fragment conservation, no leaked events);
//   * any UNR_CHECK / deadlock thrown inside the run is captured as a
//     violation (fail-loud hooks in the kernel and fabric land here).
//
// The digest folds every application-visible result (verified payload bytes,
// triggered counters, collective outputs) in (round, rank) order. It is a
// pure function of the data — never of virtual time — so replaying the same
// spec over a different channel level must produce the same digest bit for
// bit. run_differential() asserts exactly that.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "check/workload.hpp"
#include "common/units.hpp"
#include "unr/channel.hpp"

namespace unr::check {

struct RunOptions {
  unrlib::ChannelKind channel = unrlib::ChannelKind::kNative;
  /// Deadline for each round's signal waits (virtual ns). A wedged transfer
  /// becomes a "signal wait timeout" violation instead of a hang, which keeps
  /// hangs shrinkable like any other failure.
  Time wait_timeout = 500 * kMs;
  /// Check pool conservation at teardown (disable only for experiments that
  /// tear the World down mid-flight on purpose).
  bool check_invariants = true;
  /// Kernel worker shards (World::Config::shards): 0 = auto, 1 = the classic
  /// single-threaded kernel. The digest is timing-free, so a spec must
  /// produce the same digest at any shard count that shares its fault
  /// pattern (always, for fault-free specs).
  int shards = 0;
  /// Capture the virtual-time trace of the run ("unr-trace-v1" JSON) into
  /// *trace_out instead of a file — the service streams it back to clients.
  /// Tracing binds the scalar clock, so the World forces shards to 1.
  std::string* trace_out = nullptr;
  std::size_t trace_ring = 1u << 16;  ///< tracer ring capacity when capturing
  /// Capture the run's metrics-registry dump ("unr-metrics-v1" JSON).
  std::string* metrics_out = nullptr;
};

struct RunResult {
  bool ok = false;
  std::vector<std::string> violations;
  /// Order-stable fold of all application-visible results; timing never
  /// enters it, so it must match bit-for-bit across channel levels.
  std::uint64_t digest = 0;
  std::uint64_t events = 0;  ///< kernel events dispatched (fingerprinting)
  Time end_time = 0;         ///< virtual completion time (fingerprinting)
};

/// Validate a spec without running it (rank ranges, region-bounds of every
/// offset, signal-width capacity, window/collective parameters). Returns ""
/// when the spec is runnable; generate() always produces valid specs, but
/// repro files and shrinker edits go through this gate too.
std::string validate(const WorkloadSpec& spec);

RunResult run_workload(const WorkloadSpec& spec, const RunOptions& opt = {});

/// Differential channel check: replay the identical spec over each channel
/// and require (a) zero violations everywhere and (b) bit-identical digests.
struct DiffResult {
  bool ok = false;
  std::vector<std::string> violations;  ///< per-channel failures + mismatches
  std::vector<std::pair<unrlib::ChannelKind, RunResult>> runs;
};
DiffResult run_differential(const WorkloadSpec& spec,
                            std::span<const unrlib::ChannelKind> channels,
                            const RunOptions& base = {});

/// The three software channel levels every fabric personality can run; the
/// default channel set for differential mode.
std::span<const unrlib::ChannelKind> differential_channels();

const char* channel_token(unrlib::ChannelKind k);
/// Inverse of channel_token (also accepts "auto"); false on an unknown name.
bool channel_from_token(const std::string& s, unrlib::ChannelKind& out);

}  // namespace unr::check
