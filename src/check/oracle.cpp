#include "check/oracle.hpp"

#include "common/check.hpp"
#include "common/flat_table.hpp"

namespace unr::check {

std::byte Oracle::pattern_byte(std::uint64_t pattern, std::uint64_t i) {
  // One splitmix64 finalizer per 8-byte lane; cheap and position-sensitive
  // (shifted or partially-written payloads can never alias the expectation).
  const std::uint64_t lane = mix64(pattern + (i >> 3));
  return static_cast<std::byte>((lane >> ((i & 7) * 8)) & 0xff);
}

void Oracle::fill(std::span<std::byte> buf, std::uint64_t pattern) {
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = pattern_byte(pattern, i);
}

bool Oracle::check(std::span<const std::byte> buf, std::uint64_t pattern,
                   std::size_t& bad_index) {
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (buf[i] != pattern_byte(pattern, i)) {
      bad_index = i;
      return false;
    }
  }
  return true;
}

Oracle::Events Oracle::expected_events(std::size_t round, int rank) const {
  UNR_CHECK(round < spec_.rounds.size());
  const RoundSpec& r = spec_.rounds[round];
  Events e;
  if (r.kind != RoundSpec::Kind::kXfer) return e;
  for (const OpSpec& op : r.ops) {
    if (op.kind == OpSpec::Kind::kSend) continue;
    // PUT a->b: delivery notifies b, local completion notifies a.
    // GET a<-b: the owner b is notified of the read, the landing notifies a.
    if (op.remote_notify && op.b == rank) ++e.arrivals;
    if (op.local_notify && op.a == rank) ++e.locals;
  }
  return e;
}

bool Oracle::verifiable(const OpSpec& op) {
  switch (op.kind) {
    case OpSpec::Kind::kSend:
      return true;  // recv completion orders it
    case OpSpec::Kind::kPut:
      // Only the receiver's own arrival signal orders the landing at b
      // before b's verification. Local completion is NOT enough on every
      // channel: the MPI fallback is a buffered send that fires the local
      // signal at issue time, long before delivery.
      return op.remote_notify;
    case OpSpec::Kind::kGet:
      // The owner's notification fires when the response LEAVES the owner —
      // it does not order the landing at the reader. Only the reader's own
      // local signal does.
      return op.local_notify;
  }
  return false;
}

std::uint64_t Oracle::coll_pattern(std::size_t round, int rank) const {
  return mix64(spec_.seed ^ (static_cast<std::uint64_t>(round) << 20) ^
               static_cast<std::uint64_t>(rank + 1)) |
         1;
}

double Oracle::allreduce_contrib(std::size_t round, int rank, std::size_t j) const {
  // Integers below 2^20: any summation order over <= 2^20 ranks stays exact.
  return static_cast<double>(mix64(coll_pattern(round, rank) + j) % 1000);
}

double Oracle::allreduce_expected(std::size_t round, std::size_t j) const {
  double sum = 0;
  for (int r = 0; r < spec_.nranks(); ++r) sum += allreduce_contrib(round, r, j);
  return sum;
}

std::uint64_t Oracle::window_pattern(std::size_t round, int origin) const {
  return mix64(spec_.seed ^ 0x77696eull ^
               (static_cast<std::uint64_t>(round) << 24) ^
               static_cast<std::uint64_t>(origin + 1)) |
         1;
}

// --- AI / sync traffic models ---

int Oracle::vrank_of(int rank, int root, int nranks) {
  return (rank - root + nranks) % nranks;
}

int Oracle::rank_of(int vrank, int root, int nranks) {
  return (vrank + root) % nranks;
}

int Oracle::tree_parent(int vrank, int arity) {
  return vrank == 0 ? -1 : (vrank - 1) / arity;
}

int Oracle::tree_child_count(int vrank, int arity, int nranks) {
  int n = 0;
  for (int k = 1; k <= arity; ++k)
    if (arity * vrank + k < nranks) ++n;
  return n;
}

std::uint64_t Oracle::moe_bytes(std::size_t round, int src, int dst) const {
  if (src == dst) return 0;
  const RoundSpec& r = spec_.rounds[round];
  const std::uint64_t base = r.size;
  if (dst == r.root) return base * 4;  // the over-routed ("hot") expert
  const std::uint64_t jitter =
      mix64(spec_.seed ^ 0x6d6f65ull ^ (static_cast<std::uint64_t>(round) << 22) ^
            (static_cast<std::uint64_t>(src) << 9) ^
            static_cast<std::uint64_t>(dst)) %
      (base / 2 + 1);
  return base + jitter;
}

std::uint64_t Oracle::moe_pattern(std::size_t round, int src, int dst) const {
  return mix64(spec_.seed ^ 0x6d6f6570ull ^
               (static_cast<std::uint64_t>(round) << 22) ^
               (static_cast<std::uint64_t>(src) << 9) ^
               static_cast<std::uint64_t>(dst + 1)) |
         1;
}

std::int64_t Oracle::faa_contrib(std::size_t round, int rank) const {
  const RoundSpec& r = spec_.rounds[round];
  return 1 + static_cast<std::int64_t>(
                 mix64(spec_.seed ^ 0xfaaull ^
                       (static_cast<std::uint64_t>(round) << 18) ^
                       static_cast<std::uint64_t>(rank + 1)) %
                 static_cast<std::uint64_t>(r.count));
}

std::int64_t Oracle::faa_subtree_total(std::size_t round, int rank) const {
  const RoundSpec& r = spec_.rounds[round];
  const int P = spec_.nranks();
  const int v = vrank_of(rank, r.root, P);
  std::int64_t sum = faa_contrib(round, rank);
  for (int k = 1; k <= r.depth; ++k) {
    const int cv = r.depth * v + k;
    if (cv >= P) break;
    sum += faa_subtree_total(round, rank_of(cv, r.root, P));
  }
  return sum;
}

std::int64_t Oracle::faa_arm(std::size_t round, int rank) const {
  return faa_subtree_total(round, rank) - faa_contrib(round, rank);
}

std::int64_t Oracle::faa_total(std::size_t round) const {
  std::int64_t sum = 0;
  for (int rk = 0; rk < spec_.nranks(); ++rk) sum += faa_contrib(round, rk);
  return sum;
}

int Oracle::steal_victim(std::size_t round, int thief, int j) const {
  const int P = spec_.nranks();
  const int v = static_cast<int>(
      mix64(spec_.seed ^ 0x57ea1ull ^ (static_cast<std::uint64_t>(round) << 16) ^
            (static_cast<std::uint64_t>(thief) << 7) ^
            static_cast<std::uint64_t>(j)) %
      static_cast<std::uint64_t>(P - 1));
  return v >= thief ? v + 1 : v;  // never self
}

int Oracle::steal_item(std::size_t round, int thief, int j) const {
  const RoundSpec& r = spec_.rounds[round];
  return static_cast<int>(
      mix64(spec_.seed ^ 0x17e6ull ^ (static_cast<std::uint64_t>(round) << 16) ^
            (static_cast<std::uint64_t>(thief) << 7) ^
            static_cast<std::uint64_t>(j)) %
      static_cast<std::uint64_t>(r.count));
}

std::int64_t Oracle::steal_robberies(std::size_t round, int victim) const {
  const RoundSpec& r = spec_.rounds[round];
  std::int64_t n = 0;
  for (int t = 0; t < spec_.nranks(); ++t) {
    if (t == victim) continue;
    for (int j = 0; j < r.count; ++j)
      if (steal_victim(round, t, j) == victim) ++n;
  }
  return n;
}

std::uint64_t Oracle::item_pattern(std::size_t round, int victim, int item) const {
  return mix64(spec_.seed ^ 0x6974656dull ^
               (static_cast<std::uint64_t>(round) << 18) ^
               (static_cast<std::uint64_t>(victim) << 8) ^
               static_cast<std::uint64_t>(item + 1)) |
         1;
}

std::uint64_t Oracle::pipe_pattern(std::size_t round, int mb) const {
  return mix64(spec_.seed ^ 0x70697065ull ^
               (static_cast<std::uint64_t>(round) << 18) ^
               static_cast<std::uint64_t>(mb + 1)) |
         1;
}

std::uint64_t Oracle::bt_pattern(std::size_t round, int rank, int phase) const {
  return mix64(spec_.seed ^ 0x62747265ull ^
               (static_cast<std::uint64_t>(round) << 18) ^
               (static_cast<std::uint64_t>(rank + 1) << 2) ^
               static_cast<std::uint64_t>(phase)) |
         1;
}

}  // namespace unr::check
