#include "check/oracle.hpp"

#include "common/check.hpp"
#include "common/flat_table.hpp"

namespace unr::check {

std::byte Oracle::pattern_byte(std::uint64_t pattern, std::uint64_t i) {
  // One splitmix64 finalizer per 8-byte lane; cheap and position-sensitive
  // (shifted or partially-written payloads can never alias the expectation).
  const std::uint64_t lane = mix64(pattern + (i >> 3));
  return static_cast<std::byte>((lane >> ((i & 7) * 8)) & 0xff);
}

void Oracle::fill(std::span<std::byte> buf, std::uint64_t pattern) {
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = pattern_byte(pattern, i);
}

bool Oracle::check(std::span<const std::byte> buf, std::uint64_t pattern,
                   std::size_t& bad_index) {
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (buf[i] != pattern_byte(pattern, i)) {
      bad_index = i;
      return false;
    }
  }
  return true;
}

Oracle::Events Oracle::expected_events(std::size_t round, int rank) const {
  UNR_CHECK(round < spec_.rounds.size());
  const RoundSpec& r = spec_.rounds[round];
  Events e;
  if (r.kind != RoundSpec::Kind::kXfer) return e;
  for (const OpSpec& op : r.ops) {
    if (op.kind == OpSpec::Kind::kSend) continue;
    // PUT a->b: delivery notifies b, local completion notifies a.
    // GET a<-b: the owner b is notified of the read, the landing notifies a.
    if (op.remote_notify && op.b == rank) ++e.arrivals;
    if (op.local_notify && op.a == rank) ++e.locals;
  }
  return e;
}

bool Oracle::verifiable(const OpSpec& op) {
  switch (op.kind) {
    case OpSpec::Kind::kSend:
      return true;  // recv completion orders it
    case OpSpec::Kind::kPut:
      // Only the receiver's own arrival signal orders the landing at b
      // before b's verification. Local completion is NOT enough on every
      // channel: the MPI fallback is a buffered send that fires the local
      // signal at issue time, long before delivery.
      return op.remote_notify;
    case OpSpec::Kind::kGet:
      // The owner's notification fires when the response LEAVES the owner —
      // it does not order the landing at the reader. Only the reader's own
      // local signal does.
      return op.local_notify;
  }
  return false;
}

std::uint64_t Oracle::coll_pattern(std::size_t round, int rank) const {
  return mix64(spec_.seed ^ (static_cast<std::uint64_t>(round) << 20) ^
               static_cast<std::uint64_t>(rank + 1)) |
         1;
}

double Oracle::allreduce_contrib(std::size_t round, int rank, std::size_t j) const {
  // Integers below 2^20: any summation order over <= 2^20 ranks stays exact.
  return static_cast<double>(mix64(coll_pattern(round, rank) + j) % 1000);
}

double Oracle::allreduce_expected(std::size_t round, std::size_t j) const {
  double sum = 0;
  for (int r = 0; r < spec_.nranks(); ++r) sum += allreduce_contrib(round, r, j);
  return sum;
}

std::uint64_t Oracle::window_pattern(std::size_t round, int origin) const {
  return mix64(spec_.seed ^ 0x77696eull ^
               (static_cast<std::uint64_t>(round) << 24) ^
               static_cast<std::uint64_t>(origin + 1)) |
         1;
}

}  // namespace unr::check
