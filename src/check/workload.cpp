#include "check/workload.hpp"

#include <algorithm>
#include <sstream>

#include "check/oracle.hpp"
#include "common/check.hpp"
#include "common/flat_table.hpp"
#include "common/rng.hpp"

namespace unr::check {

namespace {

/// Weighted pick: `weights` parallel to [0, n); returns an index.
int pick_weighted(Rng& rng, std::initializer_list<int> weights) {
  int total = 0;
  for (int w : weights) total += w;
  int roll = static_cast<int>(rng.below(static_cast<std::uint64_t>(total)));
  int i = 0;
  for (int w : weights) {
    if (roll < w) return i;
    roll -= w;
    ++i;
  }
  return 0;
}

template <class T>
T pick_from(Rng& rng, std::initializer_list<T> vals) {
  auto it = vals.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(rng.below(vals.size())));
  return *it;
}

/// Per-rank bump allocator over the shared region: every op gets offsets no
/// other op ever touches, which is what makes the byte oracle exact.
class Layout {
 public:
  explicit Layout(int nranks) : cursor_(static_cast<std::size_t>(nranks), 0) {}
  std::uint64_t claim(int rank, std::uint64_t size) {
    std::uint64_t& c = cursor_[static_cast<std::size_t>(rank)];
    const std::uint64_t off = c;
    c += std::max<std::uint64_t>(8, (size + 7) & ~std::uint64_t{7});
    return off;
  }
  std::uint64_t high_water() const {
    std::uint64_t m = 64;
    for (std::uint64_t c : cursor_) m = std::max(m, c);
    return m;
  }

 private:
  std::vector<std::uint64_t> cursor_;
};

}  // namespace

WorkloadSpec generate(std::uint64_t seed, const GenConfig& gc) {
  Rng rng(seed ^ 0x756e725f66757a7aull);  // "unr_fuzz"
  WorkloadSpec s;
  s.seed = seed;
  s.iface = gc.iface;
  s.faults = gc.faults;
  s.profile = pick_from<const char*>(rng, {"TH-XY", "TH-2A", "HPC-IB", "HPC-RoCE"});
  s.nodes = pick_from(rng, {1, 2, 2, 3});
  s.ranks_per_node = s.nodes == 1 ? 2 : pick_from(rng, {1, 1, 2});
  s.nics = pick_from(rng, {1, 2, 2, 4});
  s.sig_n_bits = pick_from(rng, {5, 8, 12, 30});
  s.shm_intra_node = s.ranks_per_node > 1 && rng.below(100) < 30;
  s.nic_death = s.faults && s.nics >= 2 && rng.below(100) < 50;

  const int P = s.nranks();
  Layout layout(P);
  const int n_rounds =
      gc.min_rounds + static_cast<int>(rng.below(static_cast<std::uint64_t>(
                          gc.max_rounds - gc.min_rounds + 1)));

  for (int r = 0; r < n_rounds; ++r) {
    RoundSpec round;
    // The classic palette consumes the RNG stream exactly as it always has
    // (same weights, same total) so the golden pins stay bit-identical; the
    // AI/sync palette extends it with the scenario-pack kinds.
    int kind_idx;
    if (gc.mix == GenConfig::Mix::kAiSync) {
      kind_idx = pick_weighted(rng, {36, 5, 5, 5, 5, 5, 6, 5, 5, 5, 5, 5, 4, 4});
    } else {
      kind_idx = pick_weighted(rng, {50, 8, 8, 8, 8, 8, 10});
    }
    switch (kind_idx) {
      case 0: round.kind = RoundSpec::Kind::kXfer; break;
      case 1: round.kind = RoundSpec::Kind::kBarrier; break;
      case 2: round.kind = RoundSpec::Kind::kRmaBarrier; break;
      case 3: round.kind = RoundSpec::Kind::kBcast; break;
      case 4: round.kind = RoundSpec::Kind::kAllgather; break;
      case 5: round.kind = RoundSpec::Kind::kAllreduce; break;
      case 6: round.kind = RoundSpec::Kind::kWindow; break;
      case 7: round.kind = RoundSpec::Kind::kAllreduceRing; break;
      case 8: round.kind = RoundSpec::Kind::kAllreduceTree; break;
      case 9: round.kind = RoundSpec::Kind::kAlltoall; break;
      case 10: round.kind = RoundSpec::Kind::kFaaCombine; break;
      case 11: round.kind = RoundSpec::Kind::kBarrierTree; break;
      case 12: round.kind = RoundSpec::Kind::kSteal; break;
      default: round.kind = RoundSpec::Kind::kPipeline; break;
    }
    switch (round.kind) {
      case RoundSpec::Kind::kXfer: {
        const int n_ops = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(
                                  gc.max_ops_per_round)));
        for (int i = 0; i < n_ops; ++i) {
          OpSpec op;
          switch (pick_weighted(rng, {50, 30, 20})) {
            case 0: op.kind = OpSpec::Kind::kPut; break;
            case 1: op.kind = OpSpec::Kind::kGet; break;
            default: op.kind = OpSpec::Kind::kSend; break;
          }
          op.a = static_cast<int>(rng.below(static_cast<std::uint64_t>(P)));
          op.b = static_cast<int>(rng.below(static_cast<std::uint64_t>(P - 1)));
          if (op.b >= op.a) ++op.b;  // peer != self
          if (op.kind == OpSpec::Kind::kSend) {
            // 12 KiB exceeds every profile's eager threshold -> rendezvous.
            op.size = pick_from<std::uint64_t>(
                rng, {0, 1, 64, 64, 1500, 4096, 12 * 1024});
          } else {
            // 40 KiB exceeds split_threshold -> automatic multi-NIC split.
            op.size = pick_from<std::uint64_t>(
                rng, {0, 1, 8, 8, 257, 4096, 4096, 9 * 1024, 40 * 1024});
          }
          op.pattern = rng.next() | 1;
          if (op.kind != OpSpec::Kind::kSend) {
            op.remote_notify = rng.below(100) < 80;
            op.local_notify = rng.below(100) < 70;
            if (op.kind == OpSpec::Kind::kPut && rng.below(100) < 25)
              op.force_split = static_cast<int>(2 + rng.below(3));
            if (rng.below(100) < 20)
              op.nic = static_cast<int>(rng.below(static_cast<std::uint64_t>(s.nics)));
            // Source is at `a` for PUT, at `b` (the owner) for GET; the
            // landing side is the mirror.
            const int src_rank = op.kind == OpSpec::Kind::kPut ? op.a : op.b;
            const int dst_rank = op.kind == OpSpec::Kind::kPut ? op.b : op.a;
            op.src_off = layout.claim(src_rank, op.size);
            op.dst_off = layout.claim(dst_rank, op.size);
          }
          round.ops.push_back(op);
        }
        break;
      }
      case RoundSpec::Kind::kBcast:
        round.root = static_cast<int>(rng.below(static_cast<std::uint64_t>(P)));
        round.size = pick_from<std::uint64_t>(rng, {1, 64, 2048});
        break;
      case RoundSpec::Kind::kAllgather:
        round.size = pick_from<std::uint64_t>(rng, {1, 64, 2048});
        break;
      case RoundSpec::Kind::kAllreduce:
        round.size = pick_from<std::uint64_t>(rng, {1, 16, 128});
        break;
      case RoundSpec::Kind::kWindow:
        round.root = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(
                             std::max(1, P - 1))));
        round.size = pick_from<std::uint64_t>(rng, {8, 64, 512});
        break;
      case RoundSpec::Kind::kAllreduceRing:
        round.size = pick_from<std::uint64_t>(rng, {3, 16, 64});
        break;
      case RoundSpec::Kind::kAllreduceTree:
        round.root = static_cast<int>(rng.below(static_cast<std::uint64_t>(P)));
        round.size = pick_from<std::uint64_t>(rng, {4, 16, 64});
        break;
      case RoundSpec::Kind::kAlltoall:
        round.root = static_cast<int>(rng.below(static_cast<std::uint64_t>(P)));
        round.size = pick_from<std::uint64_t>(rng, {1, 64, 1024});
        break;
      case RoundSpec::Kind::kFaaCombine:
        round.root = static_cast<int>(rng.below(static_cast<std::uint64_t>(P)));
        round.count = pick_from(rng, {1, 2, 4});
        round.depth = pick_from(rng, {2, 3, 4});
        break;
      case RoundSpec::Kind::kBarrierTree:
        round.root = static_cast<int>(rng.below(static_cast<std::uint64_t>(P)));
        round.depth = pick_from(rng, {2, 3});
        break;
      case RoundSpec::Kind::kSteal:
        round.size = pick_from<std::uint64_t>(rng, {8, 64, 256});
        round.count = pick_from(rng, {1, 2, 4});
        break;
      case RoundSpec::Kind::kPipeline:
        round.size = pick_from<std::uint64_t>(rng, {64, 1024, 4096});
        round.count = pick_from(rng, {2, 4, 8});
        round.depth = pick_from(rng, {1, 2, 4});
        break;
      case RoundSpec::Kind::kBarrier:
      case RoundSpec::Kind::kRmaBarrier:
        break;
    }
    s.rounds.push_back(std::move(round));
  }
  s.region_bytes = layout.high_water();
  return s;
}

bool inject_mutation(WorkloadSpec& spec, Mutation m, std::uint64_t seed) {
  if (m == Mutation::kNone) return true;
  if (m == Mutation::kCorruptPayload) {
    std::vector<std::pair<std::size_t, std::size_t>> sites;
    for (std::size_t r = 0; r < spec.rounds.size(); ++r) {
      const RoundSpec& round = spec.rounds[r];
      if (round.kind != RoundSpec::Kind::kXfer) continue;
      for (std::size_t i = 0; i < round.ops.size(); ++i) {
        const OpSpec& op = round.ops[i];
        // Only ops whose landing the runner actually reads back can carry
        // the planted corruption (Oracle::verifiable is the single source
        // of truth for that set).
        if (op.size >= 1 && Oracle::verifiable(op)) sites.emplace_back(r, i);
      }
    }
    if (sites.empty()) return false;
    const auto [r, i] = sites[mix64(seed) % sites.size()];
    spec.rounds[r].ops[i].corrupt = true;
    return true;
  }
  // kStraySignal: pick a round + rank where the arrival signal exists, so the
  // stray addend drives a real counter negative.
  std::vector<std::pair<std::size_t, int>> sites;
  for (std::size_t r = 0; r < spec.rounds.size(); ++r) {
    const RoundSpec& round = spec.rounds[r];
    if (round.kind != RoundSpec::Kind::kXfer) continue;
    for (const OpSpec& op : round.ops) {
      if (op.kind == OpSpec::Kind::kSend || !op.remote_notify) continue;
      // The remote notification lands at `b` for both PUT (receiver) and GET
      // (data owner) — that rank's arrival signal is the mutation target.
      sites.emplace_back(r, op.b);
    }
  }
  if (sites.empty()) return false;
  const auto [r, rank] = sites[mix64(seed ^ 0x5157ull) % sites.size()];
  spec.rounds[r].stray_sig_rank = rank;
  return true;
}

std::size_t total_ops(const WorkloadSpec& spec) {
  std::size_t n = 0;
  for (const RoundSpec& r : spec.rounds)
    n += r.kind == RoundSpec::Kind::kXfer ? r.ops.size() : 1;
  return n;
}

const char* op_kind_name(OpSpec::Kind k) {
  switch (k) {
    case OpSpec::Kind::kPut: return "put";
    case OpSpec::Kind::kGet: return "get";
    case OpSpec::Kind::kSend: return "send";
  }
  return "?";
}

const char* round_kind_name(RoundSpec::Kind k) {
  switch (k) {
    case RoundSpec::Kind::kXfer: return "xfer";
    case RoundSpec::Kind::kBarrier: return "barrier";
    case RoundSpec::Kind::kRmaBarrier: return "rma_barrier";
    case RoundSpec::Kind::kBcast: return "bcast";
    case RoundSpec::Kind::kAllgather: return "allgather";
    case RoundSpec::Kind::kAllreduce: return "allreduce";
    case RoundSpec::Kind::kWindow: return "window";
    case RoundSpec::Kind::kAllreduceRing: return "ar_ring";
    case RoundSpec::Kind::kAllreduceTree: return "ar_tree";
    case RoundSpec::Kind::kAlltoall: return "alltoall";
    case RoundSpec::Kind::kFaaCombine: return "faa_tree";
    case RoundSpec::Kind::kBarrierTree: return "barrier_tree";
    case RoundSpec::Kind::kSteal: return "steal";
    case RoundSpec::Kind::kPipeline: return "pipeline";
  }
  return "?";
}

const char* iface_token(Interface i) {
  switch (i) {
    case Interface::kGlex: return "glex";
    case Interface::kVerbs: return "verbs";
    case Interface::kUtofu: return "utofu";
    case Interface::kUgni: return "ugni";
    case Interface::kPami: return "pami";
    case Interface::kPortals: return "portals";
  }
  return "?";
}

bool iface_from_token(const std::string& s, Interface& out) {
  if (s == "glex") out = Interface::kGlex;
  else if (s == "verbs") out = Interface::kVerbs;
  else if (s == "utofu") out = Interface::kUtofu;
  else if (s == "ugni") out = Interface::kUgni;
  else if (s == "pami") out = Interface::kPami;
  else if (s == "portals") out = Interface::kPortals;
  else return false;
  return true;
}

namespace {

RoundSpec::Kind round_kind_from(const std::string& s, bool& ok) {
  ok = true;
  if (s == "xfer") return RoundSpec::Kind::kXfer;
  if (s == "barrier") return RoundSpec::Kind::kBarrier;
  if (s == "rma_barrier") return RoundSpec::Kind::kRmaBarrier;
  if (s == "bcast") return RoundSpec::Kind::kBcast;
  if (s == "allgather") return RoundSpec::Kind::kAllgather;
  if (s == "allreduce") return RoundSpec::Kind::kAllreduce;
  if (s == "window") return RoundSpec::Kind::kWindow;
  if (s == "ar_ring") return RoundSpec::Kind::kAllreduceRing;
  if (s == "ar_tree") return RoundSpec::Kind::kAllreduceTree;
  if (s == "alltoall") return RoundSpec::Kind::kAlltoall;
  if (s == "faa_tree") return RoundSpec::Kind::kFaaCombine;
  if (s == "barrier_tree") return RoundSpec::Kind::kBarrierTree;
  if (s == "steal") return RoundSpec::Kind::kSteal;
  if (s == "pipeline") return RoundSpec::Kind::kPipeline;
  ok = false;
  return RoundSpec::Kind::kBarrier;
}

OpSpec::Kind op_kind_from(const std::string& s, bool& ok) {
  ok = true;
  if (s == "put") return OpSpec::Kind::kPut;
  if (s == "get") return OpSpec::Kind::kGet;
  if (s == "send") return OpSpec::Kind::kSend;
  ok = false;
  return OpSpec::Kind::kPut;
}

}  // namespace

std::string to_text(const WorkloadSpec& s) {
  std::ostringstream os;
  os << kWorkloadFormat << "\n";
  os << "seed " << s.seed << "\n";
  os << "profile " << s.profile << "\n";
  os << "iface " << iface_token(s.iface) << "\n";
  os << "topo nodes=" << s.nodes << " rpn=" << s.ranks_per_node
     << " nics=" << s.nics << "\n";
  os << "cfg sig_n_bits=" << s.sig_n_bits << " split_threshold=" << s.split_threshold
     << " shm=" << (s.shm_intra_node ? 1 : 0) << " faults=" << (s.faults ? 1 : 0)
     << " nic_death=" << (s.nic_death ? 1 : 0) << " region=" << s.region_bytes
     << "\n";
  for (const RoundSpec& r : s.rounds) {
    os << "round " << round_kind_name(r.kind) << " root=" << r.root
       << " size=" << r.size << " count=" << r.count << " depth=" << r.depth
       << " stray=" << r.stray_sig_rank << "\n";
    for (const OpSpec& op : r.ops) {
      os << "  op " << op_kind_name(op.kind) << " a=" << op.a << " b=" << op.b
         << " size=" << op.size << " src=" << op.src_off << " dst=" << op.dst_off
         << " split=" << op.force_split << " nic=" << op.nic
         << " rn=" << (op.remote_notify ? 1 : 0)
         << " ln=" << (op.local_notify ? 1 : 0) << " pattern=" << op.pattern
         << " corrupt=" << (op.corrupt ? 1 : 0) << "\n";
    }
  }
  os << "end\n";
  return os.str();
}

namespace {

/// Parse "key=value" into (key, value); returns false on malformed input.
bool split_kv(const std::string& tok, std::string& key, std::string& val) {
  const std::size_t eq = tok.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  key = tok.substr(0, eq);
  val = tok.substr(eq + 1);
  return !val.empty();
}

bool parse_i64(const std::string& s, std::int64_t& out) {
  try {
    std::size_t pos = 0;
    out = std::stoll(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  try {
    std::size_t pos = 0;
    out = std::stoull(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

bool from_text(const std::string& text, WorkloadSpec& out, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error) *error = why;
    return false;
  };
  WorkloadSpec s;
  s.rounds.clear();
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || (line != "unrfuzz v1" && line != "unrfuzz v2"))
    return fail("missing 'unrfuzz v1'/'unrfuzz v2' header");
  bool saw_end = false;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;  // blank line
    if (word == "end") {
      saw_end = true;
      break;
    }
    if (word == "seed") {
      if (!(ls >> s.seed)) return fail("bad seed line");
    } else if (word == "profile") {
      if (!(ls >> s.profile)) return fail("bad profile line");
    } else if (word == "iface") {
      std::string tok;
      if (!(ls >> tok) || !iface_from_token(tok, s.iface))
        return fail("bad iface line: " + line);
    } else if (word == "topo" || word == "cfg") {
      std::string tok, key, val;
      while (ls >> tok) {
        if (!split_kv(tok, key, val)) return fail("bad token '" + tok + "'");
        std::int64_t iv = 0;
        std::uint64_t uv = 0;
        if (key == "nodes" && parse_i64(val, iv)) s.nodes = static_cast<int>(iv);
        else if (key == "rpn" && parse_i64(val, iv)) s.ranks_per_node = static_cast<int>(iv);
        else if (key == "nics" && parse_i64(val, iv)) s.nics = static_cast<int>(iv);
        else if (key == "sig_n_bits" && parse_i64(val, iv)) s.sig_n_bits = static_cast<int>(iv);
        else if (key == "split_threshold" && parse_u64(val, uv)) s.split_threshold = uv;
        else if (key == "shm" && parse_i64(val, iv)) s.shm_intra_node = iv != 0;
        else if (key == "faults" && parse_i64(val, iv)) s.faults = iv != 0;
        else if (key == "nic_death" && parse_i64(val, iv)) s.nic_death = iv != 0;
        else if (key == "region" && parse_u64(val, uv)) s.region_bytes = uv;
        else return fail("unknown key '" + key + "' in: " + line);
      }
    } else if (word == "round") {
      std::string kind_tok;
      if (!(ls >> kind_tok)) return fail("bad round line: " + line);
      bool ok = false;
      RoundSpec r;
      r.kind = round_kind_from(kind_tok, ok);
      if (!ok) return fail("unknown round kind '" + kind_tok + "'");
      std::string tok, key, val;
      while (ls >> tok) {
        if (!split_kv(tok, key, val)) return fail("bad token '" + tok + "'");
        std::int64_t iv = 0;
        std::uint64_t uv = 0;
        if (key == "root" && parse_i64(val, iv)) r.root = static_cast<int>(iv);
        else if (key == "size" && parse_u64(val, uv)) r.size = uv;
        else if (key == "count" && parse_i64(val, iv)) r.count = static_cast<int>(iv);
        else if (key == "depth" && parse_i64(val, iv)) r.depth = static_cast<int>(iv);
        else if (key == "stray" && parse_i64(val, iv)) r.stray_sig_rank = static_cast<int>(iv);
        else return fail("unknown key '" + key + "' in: " + line);
      }
      s.rounds.push_back(std::move(r));
    } else if (word == "op") {
      if (s.rounds.empty()) return fail("op line before any round");
      std::string kind_tok;
      if (!(ls >> kind_tok)) return fail("bad op line: " + line);
      bool ok = false;
      OpSpec op;
      op.kind = op_kind_from(kind_tok, ok);
      if (!ok) return fail("unknown op kind '" + kind_tok + "'");
      std::string tok, key, val;
      while (ls >> tok) {
        if (!split_kv(tok, key, val)) return fail("bad token '" + tok + "'");
        std::int64_t iv = 0;
        std::uint64_t uv = 0;
        if (key == "a" && parse_i64(val, iv)) op.a = static_cast<int>(iv);
        else if (key == "b" && parse_i64(val, iv)) op.b = static_cast<int>(iv);
        else if (key == "size" && parse_u64(val, uv)) op.size = uv;
        else if (key == "src" && parse_u64(val, uv)) op.src_off = uv;
        else if (key == "dst" && parse_u64(val, uv)) op.dst_off = uv;
        else if (key == "split" && parse_i64(val, iv)) op.force_split = static_cast<int>(iv);
        else if (key == "nic" && parse_i64(val, iv)) op.nic = static_cast<int>(iv);
        else if (key == "rn" && parse_i64(val, iv)) op.remote_notify = iv != 0;
        else if (key == "ln" && parse_i64(val, iv)) op.local_notify = iv != 0;
        else if (key == "pattern" && parse_u64(val, uv)) op.pattern = uv;
        else if (key == "corrupt" && parse_i64(val, iv)) op.corrupt = iv != 0;
        else return fail("unknown key '" + key + "' in: " + line);
      }
      s.rounds.back().ops.push_back(op);
    } else {
      return fail("unknown line: " + line);
    }
  }
  if (!saw_end) return fail("missing 'end' line");
  if (s.nodes < 1 || s.ranks_per_node < 1 || s.nics < 1 || s.nranks() < 2)
    return fail("bad topology");
  out = std::move(s);
  return true;
}

}  // namespace unr::check
